//! Table definitions and rendering in the paper's format.

use arraymem_workloads::{measure_case_at, Case, Measurement};
use std::time::Instant;

/// One paper table: its number, benchmark, and dataset builder.
#[derive(Clone, Copy, Debug)]
pub struct TableSpec {
    pub number: usize,
    pub title: &'static str,
    pub benchmark: &'static str,
    pub paper_runs: usize,
}

/// The seven tables of the paper's §VI, plus the three irregular-access
/// workloads (tables VIII–X, ours).
pub fn all_tables() -> Vec<TableSpec> {
    vec![
        TableSpec {
            number: 1,
            title: "NW performance",
            benchmark: "nw",
            paper_runs: 1000,
        },
        TableSpec {
            number: 2,
            title: "LUD performance",
            benchmark: "lud",
            paper_runs: 10,
        },
        TableSpec {
            number: 3,
            title: "Hotspot performance",
            benchmark: "hotspot",
            paper_runs: 10,
        },
        TableSpec {
            number: 4,
            title: "LBM performance",
            benchmark: "lbm",
            paper_runs: 100,
        },
        TableSpec {
            number: 5,
            title: "OptionPricing performance",
            benchmark: "optionpricing",
            paper_runs: 1000,
        },
        TableSpec {
            number: 6,
            title: "LocVolCalib performance",
            benchmark: "locvolcalib",
            paper_runs: 10,
        },
        TableSpec {
            number: 7,
            title: "NN performance",
            benchmark: "nn",
            paper_runs: 100,
        },
        // Tables VIII–X are not in the paper: the irregular-access family
        // exercises sound degradation of the affine analyses on
        // runtime-indexed (gather/scatter) dataflow.
        TableSpec {
            number: 8,
            title: "SpMV (CSR) performance",
            benchmark: "spmv",
            paper_runs: 10,
        },
        TableSpec {
            number: 9,
            title: "Histogram performance",
            benchmark: "histogram",
            paper_runs: 10,
        },
        TableSpec {
            number: 10,
            title: "Permutation performance",
            benchmark: "permutation",
            paper_runs: 10,
        },
    ]
}

/// The benchmark names [`table_cases`] accepts, in table order.
pub const KNOWN_BENCHMARKS: [&str; 10] = [
    "nw",
    "lud",
    "hotspot",
    "lbm",
    "optionpricing",
    "locvolcalib",
    "nn",
    "spmv",
    "histogram",
    "permutation",
];

/// Build the cases (all datasets) for one table. `quick` shrinks datasets
/// for smoke runs. Unknown names produce an error listing the known ones
/// (benchmark lists reach this from the command line).
pub fn table_cases(benchmark: &str, quick: bool) -> Result<Vec<Case>, String> {
    use arraymem_workloads as w;
    Ok(match benchmark {
        "nw" => {
            if quick {
                vec![w::nw::case("256", 16, 16, 2)]
            } else {
                w::nw::datasets()
                    .into_iter()
                    .map(|(l, q, b, r)| w::nw::case(l, q, b, r))
                    .collect()
            }
        }
        "lud" => {
            if quick {
                vec![w::lud::case("128", 8, 16, 2)]
            } else {
                w::lud::datasets()
                    .into_iter()
                    .map(|(l, q, b, r)| w::lud::case(l, q, b, r))
                    .collect()
            }
        }
        "hotspot" => {
            if quick {
                vec![w::hotspot::case("128", 128, 8, 2)]
            } else {
                w::hotspot::datasets()
                    .into_iter()
                    .map(|(l, n, s, r)| w::hotspot::case(l, n, s, r))
                    .collect()
            }
        }
        "lbm" => {
            if quick {
                vec![w::lbm::case("short", (16, 16, 8), 3, 2)]
            } else {
                w::lbm::datasets()
                    .into_iter()
                    .map(|(l, d, s, r)| w::lbm::case(l, d, s, r))
                    .collect()
            }
        }
        "optionpricing" => {
            if quick {
                vec![w::optionpricing::case("medium", 2048, 32, 2)]
            } else {
                w::optionpricing::datasets()
                    .into_iter()
                    .map(|(l, n, s, r)| w::optionpricing::case(l, n, s, r))
                    .collect()
            }
        }
        "locvolcalib" => {
            if quick {
                vec![w::locvolcalib::case("small", 16, 64, 16, 2)]
            } else {
                w::locvolcalib::datasets()
                    .into_iter()
                    .map(|(l, o, x, t, r)| w::locvolcalib::case(l, o, x, t, r))
                    .collect()
            }
        }
        "nn" => {
            if quick {
                vec![w::nn::case("8552", 8552, 8, 2)]
            } else {
                w::nn::datasets()
                    .into_iter()
                    .map(|(l, n, k, r)| w::nn::case(l, n, k, r))
                    .collect()
            }
        }
        "spmv" => {
            if quick {
                vec![w::irregular::spmv_case("2k×2k", 2_000, 2_000, 8, 2)]
            } else {
                w::irregular::spmv_datasets()
                    .into_iter()
                    .map(|(l, nr, nc, z, r)| w::irregular::spmv_case(l, nr, nc, z, r))
                    .collect()
            }
        }
        "histogram" => {
            if quick {
                vec![w::irregular::histogram_case("10k/64", 10_000, 64, 2)]
            } else {
                w::irregular::histogram_datasets()
                    .into_iter()
                    .map(|(l, n, b, r)| w::irregular::histogram_case(l, n, b, r))
                    .collect()
            }
        }
        "permutation" => {
            if quick {
                vec![w::irregular::permutation_case("10k", 10_000, 2)]
            } else {
                w::irregular::permutation_datasets()
                    .into_iter()
                    .map(|(l, n, r)| w::irregular::permutation_case(l, n, r))
                    .collect()
            }
        }
        other => {
            return Err(format!(
                "unknown benchmark {other:?}; known benchmarks: {}",
                KNOWN_BENCHMARKS.join(", ")
            ))
        }
    })
}

/// Render measurements in the paper's column format:
/// Dataset | Ref. | Unopt. Futhark | Opt. Futhark | Opt. Impact.
pub fn render_table(spec: &TableSpec, rows: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "TABLE {} — {} ({} runs in the paper; CPU-scaled datasets)\n",
        roman(spec.number),
        spec.title,
        spec.paper_runs
    ));
    s.push_str(&format!(
        "{:<10} {:>4} {:>12} {:>16} {:>14} {:>12}\n",
        "Dataset", "Thr", "Ref.", "Unopt. Futhark", "Opt. Futhark", "Opt. Impact"
    ));
    for m in rows {
        s.push_str(&format!(
            "{:<10} {:>4} {:>10.2}ms {:>15.2}x {:>13.2}x {:>11.2}x\n",
            m.dataset,
            m.threads,
            m.reference.as_secs_f64() * 1e3,
            m.unopt_rel(),
            m.opt_rel(),
            m.impact()
        ));
    }
    s
}

/// Render the mechanism rows under a table: what the optimizer *did*
/// (copied/elided bytes) and what the substrate did (allocations,
/// free-list reuse, elided zeroing, pool dispatches), per variant.
pub fn render_mechanism(rows: &[Measurement]) -> String {
    let mut s = String::new();
    for m in rows {
        s.push_str(&format!(
            "  {:<10} unopt copied {:>12} B | opt copied {:>12} B | elided {:>12} B\n",
            m.dataset,
            m.unopt_stats.bytes_copied,
            m.opt_stats.bytes_copied,
            m.opt_stats.bytes_elided
        ));
        for (label, st) in [("unopt", &m.unopt_stats), ("opt", &m.opt_stats)] {
            s.push_str(&format!(
                "  {:<10} {:<5} allocs {:>6} | blocks_reused {:>6} | zeroing_elided {:>12} B | pool_dispatches {:>5}\n",
                m.dataset,
                label,
                st.num_allocs,
                st.blocks_reused,
                st.bytes_zeroing_elided,
                st.pool_dispatches
            ));
        }
        // Parallel mechanism: which maps ran parallel-and-in-place, and
        // how the work-stealing pool's chunks and workers were used.
        for (label, st) in [("unopt", &m.unopt_stats), ("opt", &m.opt_stats)] {
            s.push_str(&format!(
                "  {:<10} {:<5} threads {:>3} | maps_par_inplace {:>4} | chunks {:>6} ({:>5} stolen) | workers {:>4}/{:<4}\n",
                m.dataset,
                label,
                m.threads,
                st.maps_parallel_in_place,
                st.par_chunks,
                st.par_chunks_stolen,
                st.par_workers_engaged,
                st.par_workers_offered
            ));
        }
        // Peak-memory mechanism: what block merging bought, per variant.
        for (label, st) in [("unopt", &m.unopt_stats), ("opt", &m.opt_stats)] {
            s.push_str(&format!(
                "  {:<10} {:<5} peak_bytes_live {:>12} B | blocks_merged {:>3} | carried_releases {:>4} | color_slab_hits {:>4}\n",
                m.dataset,
                label,
                st.peak_bytes_live,
                st.blocks_merged,
                st.carried_releases,
                st.color_slab_hits
            ));
        }
        for (label, pl) in [("unopt", &m.unopt_plan), ("opt", &m.opt_plan)] {
            s.push_str(&format!(
                "  {:<10} {:<5} plan_builds {:>2} | plan_cache_hits {:>5} | plan_build {:>8.3}ms\n",
                m.dataset,
                label,
                pl.builds,
                pl.cache_hits,
                pl.build_time.as_secs_f64() * 1e3
            ));
        }
        for (label, passes) in [("unopt", &m.unopt_passes), ("opt", &m.opt_passes)] {
            for p in passes.iter() {
                s.push_str(&format!(
                    "  {:<10} {:<5} pass {:<13} {:>8.3}ms | stms {:>3} → {:>3} | remarks {:>3}\n",
                    m.dataset,
                    label,
                    p.name,
                    p.time.as_secs_f64() * 1e3,
                    p.before.stms,
                    p.after.stms,
                    p.remarks
                ));
            }
        }
    }
    s
}

fn roman(n: usize) -> &'static str {
    [
        "", "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X",
    ][n]
}

/// How much of a table to measure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunMode {
    /// Full (CPU-scaled) datasets, paper-style run counts.
    Full,
    /// Tiny datasets, normal run counts.
    Quick,
    /// Tiny datasets, a single measured run per variant — the CI mode.
    Smoke,
}

/// Measure one table's rows (the shared engine behind the rendered and
/// JSON outputs) at the default worker-pool thread count.
pub fn measure_table(spec: &TableSpec, mode: RunMode) -> Result<Vec<Measurement>, String> {
    measure_table_at(spec, mode, arraymem_exec::default_threads())
}

/// [`measure_table`] at an explicit thread count — `tables --threads
/// 1,2,4,8` calls this once per count to chart the scaling trajectory.
pub fn measure_table_at(
    spec: &TableSpec,
    mode: RunMode,
    threads: usize,
) -> Result<Vec<Measurement>, String> {
    let mut cases = table_cases(spec.benchmark, mode != RunMode::Full)?;
    if mode == RunMode::Smoke {
        for c in &mut cases {
            c.runs = 1;
        }
    }
    Ok(cases.iter().map(|c| measure_case_at(c, threads)).collect())
}

/// Measure and render one table end to end.
pub fn run_table(spec: &TableSpec, mode: RunMode) -> Result<String, String> {
    let rows = measure_table(spec, mode)?;
    Ok(format!(
        "{}{}",
        render_table(spec, &rows),
        render_mechanism(&rows)
    ))
}

/// One tenant's aggregated figures inside a [`ServerBenchRow`].
#[derive(Clone, Debug)]
pub struct TenantRow {
    pub tenant: String,
    pub runs: u64,
    pub num_allocs: u64,
    pub blocks_reused: u64,
    pub arena_blocks_adopted: u64,
    pub bytes_cross_tenant_scrubbed: u64,
    pub bytes_zeroing_elided: u64,
}

/// One benchmark's multi-tenant server sweep: N clients hammering one
/// [`arraymem_server::Server`] across M tenants.
#[derive(Clone, Debug)]
pub struct ServerBenchRow {
    pub benchmark: String,
    pub dataset: String,
    pub clients: usize,
    pub tenants: usize,
    /// Memory-mode executions completed (the throughput numerator).
    pub runs: u64,
    pub wall_ms: f64,
    pub throughput_rps: f64,
    /// Plans actually lowered by the shared cache…
    pub plan_builds: u64,
    /// …which the acceptance criterion compares against the number of
    /// distinct (program, options) request keys the sweep issued.
    pub distinct_plans: u64,
    pub plan_cache_hits: u64,
    pub stampedes_coalesced: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub queued: u64,
    pub peak_queue_depth: usize,
    pub peak_in_flight: usize,
    pub avg_queue_wait_ms: f64,
    pub arena_blocks_adopted: u64,
    pub bytes_cross_tenant_scrubbed: u64,
    /// The largest single tenant's `peak_bytes_live` (what
    /// `Stats::merge` reports for the fleet aggregate).
    pub tenant_peak_max_bytes: u64,
    /// The shared arena's high-water across all tenants *concurrently*
    /// — ≥ the per-tenant max whenever tenants peak together.
    pub arena_peak_bytes_live: u64,
    /// Checked-mode sanitizer findings across every tenant (must be 0:
    /// cross-tenant recycling may never trip provenance on a correct
    /// program).
    pub checked_diagnostics: u64,
    pub tenant_rows: Vec<TenantRow>,
}

/// Run the 16-client-style server sweep for one table: every client
/// replays the table's first dataset through one shared server (clients
/// round-robin across `tenants` tenant names), first in `Mode::Memory`
/// (measured for throughput), then once each under `Mode::Checked` (the
/// cross-tenant provenance leg). Outputs are validated against the
/// case's reference implementation on every client's first run.
pub fn measure_server_table(
    spec: &TableSpec,
    mode: RunMode,
    clients: usize,
    tenants: usize,
) -> Result<ServerBenchRow, String> {
    use arraymem_exec::{Mode, PlanCache};
    use arraymem_server::{ExecRequest, Server, ServerConfig};

    let mut cases = table_cases(spec.benchmark, mode != RunMode::Full)?;
    let mut case = cases.remove(0);
    if mode == RunMode::Smoke {
        case.runs = 1;
    }
    let clients = clients.max(1);
    let tenants = tenants.max(1).min(clients);
    let opt = case.compile(true);
    let checks: Vec<_> = opt.report.checks().cloned().collect();
    let (_, expect) = (case.reference)(&case.inputs);
    // The request keys this sweep will present: the memory leg prepares
    // without circuit checks, the checked leg with them — distinct
    // (program, options) pairs, or one pair when the check set is empty.
    let mut keys = vec![
        PlanCache::key(
            &opt.program,
            &case.kernels,
            &[],
            &opt.report.merges,
            &opt.report.par_safety,
        ),
        PlanCache::key(
            &opt.program,
            &case.kernels,
            &checks,
            &opt.report.merges,
            &opt.report.par_safety,
        ),
    ];
    keys.sort_unstable();
    keys.dedup();
    let distinct_plans = keys.len() as u64;

    let server = Server::new(ServerConfig {
        cache_shards: 16,
        max_in_flight: 4,
        queue_depth: clients,
        threads: 1,
    });
    // Only the Sync parts of the case cross into client threads (the
    // reference closure itself is not shareable).
    let kernels = &case.kernels;
    let inputs = &case.inputs;
    let case_name = &case.name;
    let case_dataset = &case.dataset;
    let tol = case.tol;
    let tenant_name = |c: usize| format!("tenant-{}", c % tenants);
    let expect = &expect;
    let validate = move |out: &[arraymem_exec::OutputValue], what: &str| -> Result<(), String> {
        if expect.len() != out.len() {
            return Err(format!(
                "{case_name}/{case_dataset}: {what}: arity mismatch vs reference"
            ));
        }
        for (k, (e, o)) in expect.iter().zip(out).enumerate() {
            if !e.approx_eq(o, tol) {
                return Err(format!(
                    "{case_name}/{case_dataset}: {what}: output {k} differs from reference"
                ));
            }
        }
        Ok(())
    };

    // Memory-mode throughput phase.
    let runs_per_client = case.runs.max(1);
    let t0 = Instant::now();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                let opt = &opt;
                let tenant = tenant_name(c);
                let validate = &validate;
                scope.spawn(move || -> Result<(), String> {
                    let req = ExecRequest {
                        program: &opt.program,
                        kernels,
                        checks: &[],
                        merges: &opt.report.merges,
                        par: &opt.report.par_safety,
                        inputs,
                        mode: Mode::Memory,
                    };
                    for run in 0..runs_per_client {
                        let (out, _) = server
                            .execute(&tenant, req)
                            .map_err(|e| format!("client {c} ({tenant}): {e}"))?;
                        if run == 0 {
                            validate(&out, "server memory run")?;
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("client thread panicked").err())
            .collect()
    });
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }
    let wall = t0.elapsed();
    let memory_runs = (clients * runs_per_client) as u64;

    // Checked phase: one sanitized run per client, still concurrent —
    // cross-tenant arena adoptions must stay silent.
    let checked_errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                let opt = &opt;
                let checks = &checks;
                let tenant = tenant_name(c);
                let validate = &validate;
                scope.spawn(move || -> Result<(), String> {
                    let req = ExecRequest {
                        program: &opt.program,
                        kernels,
                        checks,
                        merges: &opt.report.merges,
                        par: &opt.report.par_safety,
                        inputs,
                        mode: Mode::Checked,
                    };
                    let (out, _) = server
                        .execute(&tenant, req)
                        .map_err(|e| format!("client {c} ({tenant}, checked): {e}"))?;
                    validate(&out, "server checked run")
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("client thread panicked").err())
            .collect()
    });
    if let Some(e) = checked_errors.into_iter().next() {
        return Err(e);
    }

    let plan = server.plan_stats();
    let adm = server.admission_metrics();
    let global = server.global_stats();
    let tenant_rows = server
        .tenant_names()
        .into_iter()
        .map(|name| {
            let t = server.tenant_stats(&name).expect("tenant executed");
            TenantRow {
                tenant: name,
                runs: t.runs,
                num_allocs: t.stats.num_allocs,
                blocks_reused: t.stats.blocks_reused,
                arena_blocks_adopted: t.stats.arena_blocks_adopted,
                bytes_cross_tenant_scrubbed: t.stats.bytes_cross_tenant_scrubbed,
                bytes_zeroing_elided: t.stats.bytes_zeroing_elided,
            }
        })
        .collect();
    Ok(ServerBenchRow {
        benchmark: spec.benchmark.to_string(),
        dataset: case.dataset.clone(),
        clients,
        tenants,
        runs: memory_runs,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: memory_runs as f64 / wall.as_secs_f64().max(1e-9),
        plan_builds: plan.builds,
        distinct_plans,
        plan_cache_hits: plan.cache_hits,
        stampedes_coalesced: plan.stampedes_coalesced,
        admitted: adm.admitted,
        rejected: adm.rejected,
        queued: adm.queued,
        peak_queue_depth: adm.peak_queue_depth,
        peak_in_flight: adm.peak_in_flight,
        avg_queue_wait_ms: adm.avg_queue_wait().as_secs_f64() * 1e3,
        arena_blocks_adopted: global.stats.arena_blocks_adopted,
        bytes_cross_tenant_scrubbed: global.stats.bytes_cross_tenant_scrubbed,
        tenant_peak_max_bytes: global.stats.peak_bytes_live,
        arena_peak_bytes_live: global.arena_peak_bytes_live,
        checked_diagnostics: global.stats.diagnostics.len() as u64
            + global.stats.diagnostics_suppressed,
        tenant_rows,
    })
}

/// [`measure_server_table`] over the given tables, with the acceptance
/// invariants asserted per row: plan builds equal the distinct request
/// keys (compile once, execute everywhere) and the checked phase stayed
/// diagnostic-free across tenant boundaries.
pub fn run_server_bench(
    specs: &[TableSpec],
    mode: RunMode,
    clients: usize,
    tenants: usize,
) -> Result<Vec<ServerBenchRow>, String> {
    specs
        .iter()
        .map(|spec| {
            let row = measure_server_table(spec, mode, clients, tenants)?;
            if row.plan_builds != row.distinct_plans {
                return Err(format!(
                    "{}: plan builds ({}) != distinct (program, options) pairs ({})",
                    row.benchmark, row.plan_builds, row.distinct_plans
                ));
            }
            if row.checked_diagnostics != 0 {
                return Err(format!(
                    "{}: {} cross-tenant checked-mode diagnostics (expected none)",
                    row.benchmark, row.checked_diagnostics
                ));
            }
            Ok(row)
        })
        .collect()
}

/// Render the server sweep as text: one throughput/cache/admission line
/// per table, then the per-tenant mechanism rows.
pub fn render_server(rows: &[ServerBenchRow]) -> String {
    let mut s =
        String::from("SERVER — multi-tenant throughput (shared plan cache, admission control)\n");
    if let Some(r) = rows.first() {
        s.push_str(&format!(
            "{} clients round-robin over {} tenants per table\n",
            r.clients, r.tenants
        ));
    }
    s.push_str(&format!(
        "{:<14} {:<10} {:>6} {:>10} {:>7}/{:<7} {:>5} {:>9} {:>6} {:>7} {:>9}\n",
        "Benchmark",
        "Dataset",
        "runs",
        "req/s",
        "builds",
        "distinct",
        "hits",
        "coalesced",
        "queued",
        "peak q",
        "wait ms"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<14} {:<10} {:>6} {:>10.1} {:>7}/{:<7} {:>5} {:>9} {:>6} {:>7} {:>9.3}\n",
            r.benchmark,
            r.dataset,
            r.runs,
            r.throughput_rps,
            r.plan_builds,
            r.distinct_plans,
            r.plan_cache_hits,
            r.stampedes_coalesced,
            r.queued,
            r.peak_queue_depth,
            r.avg_queue_wait_ms
        ));
        s.push_str(&format!(
            "  {:<12} peak live: tenant max {:>12} B | arena high-water {:>12} B\n",
            r.benchmark, r.tenant_peak_max_bytes, r.arena_peak_bytes_live
        ));
        for t in &r.tenant_rows {
            s.push_str(&format!(
                "  {:<12} {:<10} runs {:>4} | allocs {:>6} | reused {:>6} | arena adopted {:>5} | scrubbed {:>10} B | zeroing elided {:>10} B\n",
                r.benchmark,
                t.tenant,
                t.runs,
                t.num_allocs,
                t.blocks_reused,
                t.arena_blocks_adopted,
                t.bytes_cross_tenant_scrubbed,
                t.bytes_zeroing_elided
            ));
        }
    }
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable results for CI trend tracking (`tables --json`):
/// per-table timing rows plus the mechanism and plan-cache counters, and
/// — when the `--server` sweep ran — one server row per table with plan
/// cache, admission queue, and arena counters. All values are finite, so
/// the hand-rolled formatting is valid JSON.
pub fn render_json(results: &[(TableSpec, Vec<Measurement>)], server: &[ServerBenchRow]) -> String {
    let mut s = String::from("{\n  \"tables\": [\n");
    for (ti, (spec, rows)) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"number\": {}, \"title\": \"{}\", \"benchmark\": \"{}\", \"rows\": [\n",
            spec.number,
            json_escape(spec.title),
            json_escape(spec.benchmark)
        ));
        for (ri, m) in rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"dataset\": \"{}\", \"threads\": {}, \"reference_ms\": {:.6}, \
                 \"unopt_ms\": {:.6}, \
                 \"opt_ms\": {:.6}, \"unopt_rel\": {:.4}, \"opt_rel\": {:.4}, \
                 \"impact\": {:.4}, \"variants\": {{",
                json_escape(&m.dataset),
                m.threads,
                m.reference.as_secs_f64() * 1e3,
                m.unopt.as_secs_f64() * 1e3,
                m.opt.as_secs_f64() * 1e3,
                m.unopt_rel(),
                m.opt_rel(),
                m.impact()
            ));
            for (vi, (label, st, pl, passes)) in [
                ("unopt", &m.unopt_stats, &m.unopt_plan, &m.unopt_passes),
                ("opt", &m.opt_stats, &m.opt_plan, &m.opt_passes),
            ]
            .iter()
            .enumerate()
            {
                s.push_str(&format!(
                    "\"{label}\": {{\"bytes_copied\": {}, \"bytes_elided\": {}, \
                     \"num_allocs\": {}, \"blocks_reused\": {}, \
                     \"bytes_zeroing_elided\": {}, \"pool_dispatches\": {}, \
                     \"maps_parallel_in_place\": {}, \"par_chunks\": {}, \
                     \"par_chunks_stolen\": {}, \"par_workers_engaged\": {}, \
                     \"par_workers_offered\": {}, \
                     \"peak_bytes_live\": {}, \"blocks_merged\": {}, \
                     \"carried_releases\": {}, \"color_slab_hits\": {}, \
                     \"plan_builds\": {}, \"plan_cache_hits\": {}, \
                     \"stampedes_coalesced\": {}, \
                     \"plan_build_ms\": {:.6}, \"passes\": [",
                    st.bytes_copied,
                    st.bytes_elided,
                    st.num_allocs,
                    st.blocks_reused,
                    st.bytes_zeroing_elided,
                    st.pool_dispatches,
                    st.maps_parallel_in_place,
                    st.par_chunks,
                    st.par_chunks_stolen,
                    st.par_workers_engaged,
                    st.par_workers_offered,
                    st.peak_bytes_live,
                    st.blocks_merged,
                    st.carried_releases,
                    st.color_slab_hits,
                    pl.builds,
                    pl.cache_hits,
                    pl.stampedes_coalesced,
                    pl.build_time.as_secs_f64() * 1e3
                ));
                for (pi, p) in passes.iter().enumerate() {
                    s.push_str(&format!(
                        "{{\"name\": \"{}\", \"ms\": {:.6}, \"stms_before\": {}, \
                         \"stms_after\": {}, \"remarks\": {}}}",
                        json_escape(p.name),
                        p.time.as_secs_f64() * 1e3,
                        p.before.stms,
                        p.after.stms,
                        p.remarks
                    ));
                    if pi + 1 < passes.len() {
                        s.push_str(", ");
                    }
                }
                s.push_str("]}");
                if vi == 0 {
                    s.push_str(", ");
                }
            }
            s.push_str("}}");
            s.push_str(if ri + 1 < rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("    ]}");
        s.push_str(if ti + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"server\": [\n");
    for (ri, r) in server.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"dataset\": \"{}\", \"clients\": {}, \
             \"tenants\": {}, \"runs\": {}, \"wall_ms\": {:.6}, \
             \"throughput_rps\": {:.3}, \"plan_builds\": {}, \
             \"distinct_plans\": {}, \"plan_cache_hits\": {}, \
             \"stampedes_coalesced\": {}, \"admitted\": {}, \"rejected\": {}, \
             \"queued\": {}, \"peak_queue_depth\": {}, \"peak_in_flight\": {}, \
             \"avg_queue_wait_ms\": {:.6}, \"arena_blocks_adopted\": {}, \
             \"bytes_cross_tenant_scrubbed\": {}, \"tenant_peak_max_bytes\": {}, \
             \"arena_peak_bytes_live\": {}, \"checked_diagnostics\": {}, \
             \"tenant_rows\": [",
            json_escape(&r.benchmark),
            json_escape(&r.dataset),
            r.clients,
            r.tenants,
            r.runs,
            r.wall_ms,
            r.throughput_rps,
            r.plan_builds,
            r.distinct_plans,
            r.plan_cache_hits,
            r.stampedes_coalesced,
            r.admitted,
            r.rejected,
            r.queued,
            r.peak_queue_depth,
            r.peak_in_flight,
            r.avg_queue_wait_ms,
            r.arena_blocks_adopted,
            r.bytes_cross_tenant_scrubbed,
            r.tenant_peak_max_bytes,
            r.arena_peak_bytes_live,
            r.checked_diagnostics
        ));
        for (ti, t) in r.tenant_rows.iter().enumerate() {
            s.push_str(&format!(
                "{{\"tenant\": \"{}\", \"runs\": {}, \"num_allocs\": {}, \
                 \"blocks_reused\": {}, \"arena_blocks_adopted\": {}, \
                 \"bytes_cross_tenant_scrubbed\": {}, \"bytes_zeroing_elided\": {}}}",
                json_escape(&t.tenant),
                t.runs,
                t.num_allocs,
                t.blocks_reused,
                t.arena_blocks_adopted,
                t.bytes_cross_tenant_scrubbed,
                t.bytes_zeroing_elided
            ));
            if ti + 1 < r.tenant_rows.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        s.push_str(if ri + 1 < server.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run one table's cases under the checked-mode sanitizer instead of
/// measuring them (the `tables --check` path): each optimized case runs
/// twice through one session (the second run exercises recycled stale
/// blocks), with every short-circuit decision concretely cross-checked.
/// Returns the rendered report and the total number of findings.
pub fn check_table(spec: &TableSpec, mode: RunMode) -> Result<(String, u64), String> {
    let cases = table_cases(spec.benchmark, mode != RunMode::Full)?;
    let mut s = format!("CHECK {} — {}\n", roman(spec.number), spec.title);
    let mut findings = 0u64;
    for case in &cases {
        let stats = case.validate_checked();
        let n = stats.diagnostics.len() as u64 + stats.diagnostics_suppressed;
        findings += n;
        s.push_str(&format!(
            "  {:<10} {:>12} cells checked | {:>4} circuit checks verified | {} diagnostics\n",
            case.dataset, stats.cells_checked, stats.circuits_verified, n
        ));
        for d in &stats.diagnostics {
            s.push_str(&format!("    {d}\n"));
        }
    }
    Ok((s, findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_benchmark_is_an_error_listing_known_names() {
        let err = match table_cases("nwe", true) {
            Err(e) => e,
            Ok(_) => panic!("'nwe' must not resolve to a benchmark"),
        };
        assert!(err.contains("unknown benchmark \"nwe\""), "{err}");
        for known in KNOWN_BENCHMARKS {
            assert!(err.contains(known), "error must list {known}: {err}");
        }
        // And every advertised name actually resolves.
        for known in KNOWN_BENCHMARKS {
            match table_cases(known, true) {
                Ok(cases) => assert!(!cases.is_empty()),
                Err(e) => panic!("{known} must resolve: {e}"),
            }
        }
    }

    #[test]
    fn json_rendering_is_balanced_and_carries_plan_counters() {
        use std::time::Duration;
        let plan = arraymem_exec::PlanStats {
            builds: 1,
            cache_hits: 41,
            build_time: Duration::from_micros(1500),
            stampedes_coalesced: 0,
        };
        let m = Measurement {
            name: "nw".into(),
            dataset: "256\"x\\2".into(), // exercises string escaping
            threads: 4,
            reference: Duration::from_millis(10),
            unopt: Duration::from_millis(8),
            opt: Duration::from_millis(4),
            unopt_stats: Default::default(),
            opt_stats: Default::default(),
            unopt_plan: plan,
            opt_plan: plan,
            unopt_passes: vec![],
            opt_passes: vec![arraymem_core::PassRun {
                name: "short_circuit",
                time: Duration::from_micros(250),
                before: Default::default(),
                after: Default::default(),
                remarks: 3,
            }],
        };
        let spec = TableSpec {
            number: 1,
            title: "NW performance",
            benchmark: "nw",
            paper_runs: 1000,
        };
        let server_row = ServerBenchRow {
            benchmark: "nw".into(),
            dataset: "256".into(),
            clients: 16,
            tenants: 4,
            runs: 160,
            wall_ms: 12.5,
            throughput_rps: 12800.0,
            plan_builds: 2,
            distinct_plans: 2,
            plan_cache_hits: 174,
            stampedes_coalesced: 3,
            admitted: 176,
            rejected: 0,
            queued: 90,
            peak_queue_depth: 11,
            peak_in_flight: 4,
            avg_queue_wait_ms: 0.25,
            arena_blocks_adopted: 40,
            bytes_cross_tenant_scrubbed: 4096,
            tenant_peak_max_bytes: 8192,
            arena_peak_bytes_live: 12288,
            checked_diagnostics: 0,
            tenant_rows: vec![TenantRow {
                tenant: "tenant-0".into(),
                runs: 44,
                num_allocs: 88,
                blocks_reused: 80,
                arena_blocks_adopted: 10,
                bytes_cross_tenant_scrubbed: 1024,
                bytes_zeroing_elided: 2048,
            }],
        };
        let json = render_json(&[(spec, vec![m])], &[server_row]);
        // Structurally valid: every brace/bracket closes, strings escaped.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON:\n{json}");
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{json}");
        assert!(!in_str, "unterminated string:\n{json}");
        assert!(json.contains("\"plan_cache_hits\": 41"), "{json}");
        assert!(json.contains("\"plan_builds\": 1"), "{json}");
        assert!(json.contains("\"threads\": 4"), "{json}");
        assert!(json.contains("\"maps_parallel_in_place\": 0"), "{json}");
        assert!(json.contains("\"par_chunks\": 0"), "{json}");
        assert!(json.contains("\"par_chunks_stolen\": 0"), "{json}");
        assert!(json.contains("\"par_workers_engaged\": 0"), "{json}");
        assert!(json.contains("\"par_workers_offered\": 0"), "{json}");
        assert!(json.contains("\"peak_bytes_live\": 0"), "{json}");
        assert!(json.contains("\"blocks_merged\": 0"), "{json}");
        assert!(json.contains("\"carried_releases\": 0"), "{json}");
        assert!(json.contains("\"color_slab_hits\": 0"), "{json}");
        assert!(json.contains("256\\\"x\\\\2"), "{json}");
        assert!(json.contains("\"passes\": []"), "{json}");
        assert!(
            json.contains("\"name\": \"short_circuit\"") && json.contains("\"remarks\": 3"),
            "{json}"
        );
        // The server sweep rides along with its queue + arena counters.
        assert!(json.contains("\"server\": ["), "{json}");
        assert!(json.contains("\"clients\": 16"), "{json}");
        assert!(json.contains("\"distinct_plans\": 2"), "{json}");
        assert!(json.contains("\"stampedes_coalesced\": 3"), "{json}");
        assert!(json.contains("\"peak_queue_depth\": 11"), "{json}");
        assert!(json.contains("\"tenant_peak_max_bytes\": 8192"), "{json}");
        assert!(json.contains("\"arena_peak_bytes_live\": 12288"), "{json}");
        assert!(json.contains("\"avg_queue_wait_ms\": 0.250000"), "{json}");
        assert!(
            json.contains("\"bytes_cross_tenant_scrubbed\": 4096"),
            "{json}"
        );
        assert!(json.contains("\"tenant\": \"tenant-0\""), "{json}");
    }
}
