//! Pipeline tests, organized around the paper's figures: each of Figs.
//! 1, 4a, 4b, 5a, 5b, 6a is built as an IR program and the
//! short-circuiting analysis must succeed/fail exactly as the paper says.

use crate::{compile, Options};
use arraymem_ir::{
    Block, Builder, ElemType, Exp, MapBody, Program, ScalarExp, SliceSpec, Stm, Type, Var,
};
use arraymem_lmad::{Dim, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

fn base_env(pairs: &[(Var, i64)]) -> Env {
    let mut env = Env::new();
    for &(v, lo) in pairs {
        env.assume_ge(v, lo);
    }
    env
}

fn compile_both(prog: &Program, env: Env) -> (crate::Compiled, crate::Compiled) {
    let unopt = compile(prog, &Options::default().with_env(env.clone())).expect("unopt compile");
    let opt = compile(prog, &Options::optimized().with_env(env)).expect("opt compile");
    (unopt, opt)
}

/// Find an update statement (recursively) and report its elision flag.
fn find_update_elided(block: &Block) -> Option<bool> {
    for stm in &block.stms {
        match &stm.exp {
            Exp::Update { elided, .. } => return Some(*elided),
            Exp::Loop { body, .. } => {
                if let Some(e) = find_update_elided(body) {
                    return Some(e);
                }
            }
            Exp::If { then_b, else_b, .. } => {
                if let Some(e) = find_update_elided(then_b).or(find_update_elided(else_b)) {
                    return Some(e);
                }
            }
            _ => {}
        }
    }
    None
}

fn find_concat_elided(block: &Block) -> Option<Vec<bool>> {
    for stm in &block.stms {
        match &stm.exp {
            Exp::Concat { elided, .. } => return Some(elided.clone()),
            Exp::Loop { body, .. } => {
                if let Some(e) = find_concat_elided(body) {
                    return Some(e);
                }
            }
            Exp::If { then_b, else_b, .. } => {
                if let Some(e) = find_concat_elided(then_b).or(find_concat_elided(else_b)) {
                    return Some(e);
                }
            }
            _ => {}
        }
    }
    None
}

fn count_allocs(block: &Block) -> usize {
    let mut n = 0;
    for stm in &block.stms {
        match &stm.exp {
            Exp::Alloc { .. } => n += 1,
            Exp::Loop { body, .. } => n += count_allocs(body),
            Exp::If { then_b, else_b, .. } => n += count_allocs(then_b) + count_allocs(else_b),
            _ => {}
        }
    }
    n
}

/// Fig. 1 (left): add to each diagonal element the corresponding element
/// of the first row; the update *can* be short-circuited.
fn fig1_left() -> (Program, Env) {
    let mut b = Builder::new("fig1_left");
    let n = b.scalar_param("n", ElemType::I64);
    let a = b.array_param("A", ElemType::F32, vec![p(n) * p(n)]);
    let mut body = b.block();
    let diag_lmad = Lmad::new(0, vec![Dim::new(p(n), p(n) + c(1))]);
    let diag = body.slice("diag", a, Transform::LmadSlice(diag_lmad.clone()));
    let row = body.slice(
        "row",
        a,
        Transform::LmadSlice(Lmad::new(0, vec![Dim::new(p(n), 1)])),
    );
    let x = body.map_lambda("X", p(n), vec![diag, row], ElemType::F32, |lb, ps| {
        let s = lb.scalar(
            "s",
            ElemType::F32,
            ScalarExp::bin(
                arraymem_ir::BinOp::Add,
                ScalarExp::var(ps[0]),
                ScalarExp::var(ps[1]),
            ),
        );
        vec![s]
    });
    let a2 = body.update("A2", a, SliceSpec::Lmad(diag_lmad), x);
    let blk = body.finish(vec![a2]);
    let env = base_env(&[(n, 1)]);
    (b.finish(blk), env)
}

/// Fig. 1 (right): add to each diagonal element the diagonal element at
/// position `js[i]` — the kernel reads `A` arbitrarily, so the update
/// must NOT be short-circuited (WAR hazards).
fn fig1_right() -> (Program, Env) {
    let mut b = Builder::new("fig1_right");
    let n = b.scalar_param("n", ElemType::I64);
    let a = b.array_param("A", ElemType::F32, vec![p(n) * p(n)]);
    let js = b.array_param("js", ElemType::I64, vec![p(n)]);
    let mut body = b.block();
    let diag_lmad = Lmad::new(0, vec![Dim::new(p(n), p(n) + c(1))]);
    let diag = body.slice("diag", a, Transform::LmadSlice(diag_lmad.clone()));
    // X[i] = diag[i] + A[js[i]*n + js[i]]: A is read at data-dependent
    // locations, so it must be declared a whole-input.
    let x = body.map_kernel_acc(
        "X",
        "diag_gather",
        p(n),
        vec![],
        ElemType::F32,
        vec![diag, js, a],
        vec![ScalarExp::var(n)],
        vec![2],
    );
    let a2 = body.update("A2", a, SliceSpec::Lmad(diag_lmad), x);
    let blk = body.finish(vec![a2]);
    let env = base_env(&[(n, 1)]);
    (b.finish(blk), env)
}

#[test]
fn fig1_left_short_circuits() {
    let (prog, env) = fig1_left();
    let (unopt, opt) = compile_both(&prog, env);
    assert_eq!(find_update_elided(&unopt.program.body), Some(false));
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(true),
        "fig1-left update should be elided; report: {:?}",
        opt.report.candidates
    );
    assert_eq!(opt.report.successes(), 1);
    // X's alloc is gone: the map writes straight into A's memory.
    assert!(count_allocs(&opt.program.body) < count_allocs(&unopt.program.body));
}

#[test]
fn fig1_right_fails_conservatively() {
    let (prog, env) = fig1_right();
    let (_, opt) = compile_both(&prog, env);
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(false),
        "fig1-right must NOT be elided; report: {:?}",
        opt.report.candidates
    );
    assert_eq!(opt.report.successes(), 0);
    assert!(opt.report.candidates[0]
        .reason
        .contains("overlaps the rebased write region"));
}

/// Fig. 4a: `xss = concat as bs` where both are fresh and lastly used —
/// both copies elided, concat becomes a no-op.
fn fig4a() -> (Program, Env) {
    let mut b = Builder::new("fig4a");
    let m = b.scalar_param("m", ElemType::I64);
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let asv = b.block(); // placate clippy; use body only
    drop(asv);
    let a = body.replicate("as", vec![p(m)], ScalarExp::f32(1.0));
    let bs = body.replicate("bs", vec![p(n)], ScalarExp::f32(2.0));
    let xss = body.concat("xss", vec![a, bs]);
    let blk = body.finish(vec![xss]);
    (b.finish(blk), base_env(&[(m, 1), (n, 1)]))
}

#[test]
fn fig4a_concat_elides_both_arguments() {
    let (prog, env) = fig4a();
    let (unopt, opt) = compile_both(&prog, env);
    assert_eq!(
        find_concat_elided(&unopt.program.body),
        Some(vec![false, false])
    );
    assert_eq!(
        find_concat_elided(&opt.program.body),
        Some(vec![true, true]),
        "report: {:?}",
        opt.report.candidates
    );
    assert_eq!(opt.report.successes(), 2);
    // Only xss's allocation remains.
    assert_eq!(count_allocs(&opt.program.body), 1);
}

/// Footnote 17: `concat bs bs` — only one of the two uses can be a last
/// use, so at most one argument is elided.
#[test]
fn concat_same_array_twice_elides_at_most_one() {
    let mut b = Builder::new("concat_twice");
    let n = b.scalar_param("ctn", ElemType::I64);
    let mut body = b.block();
    let bs = body.replicate("bs", vec![p(n)], ScalarExp::f32(1.0));
    let xss = body.concat("xss", vec![bs, bs]);
    let blk = body.finish(vec![xss]);
    let prog = b.finish(blk);
    let (_, opt) = compile_both(&prog, base_env(&[(n, 1)]));
    let elided = find_concat_elided(&opt.program.body).unwrap();
    assert!(
        elided.iter().filter(|&&e| e).count() <= 1,
        "at most one copy of a twice-used array can be elided: {elided:?}"
    );
}

/// Fig. 4b essentials: `bs` is a change-of-layout of fresh `as`, and an
/// alias `cs` derived from `bs` is used before the circuit point. The
/// whole web (as, bs, cs) must be rebased.
fn fig4b() -> (Program, Env) {
    let mut b = Builder::new("fig4b");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let xss = body.replicate("xss", vec![p(n) * c(2)], ScalarExp::f32(0.0));
    let a = body.replicate("as", vec![p(n)], ScalarExp::f32(1.0));
    // bs = reverse as (invertible change of layout)
    let bs = body.transform("bs", a, Transform::Reverse(0));
    // cs = another view of bs, used by a scalar read below.
    let cs = body.transform("cs", bs, Transform::Reverse(0));
    let _peek = body.scalar(
        "peek",
        ElemType::F32,
        ScalarExp::Index(cs, vec![ScalarExp::i64(0)]),
    );
    // xss[0 : n] = bs
    let x2 = body.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(c(0), p(n), c(1))]),
        bs,
    );
    let blk = body.finish(vec![x2]);
    (b.finish(blk), base_env(&[(n, 1)]))
}

#[test]
fn fig4b_rebases_the_whole_alias_web() {
    let (prog, env) = fig4b();
    let (_, opt) = compile_both(&prog, env);
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(true),
        "report: {:?}",
        opt.report.candidates
    );
    // as, bs and cs must all reside in xss's memory now.
    let mut bindings = std::collections::HashMap::new();
    crate::introduce::collect_bindings(&opt.program.body, &mut bindings);
    let names: std::collections::HashMap<String, Var> = bindings
        .keys()
        .map(|v| (format!("{v}").split('#').next().unwrap().to_string(), *v))
        .collect();
    let xss_block = bindings[&names["xss"]].block;
    for nm in ["as", "bs", "cs"] {
        assert_eq!(
            bindings[&names[nm]].block, xss_block,
            "{nm} not rebased into xss's memory"
        );
    }
    // `as` got the *reversed* region of xss[0:n].
    let as_ix = &bindings[&names["as"]].ixfn;
    let l = as_ix.as_single().unwrap();
    assert_eq!(l.dims.len(), 1);
    assert_eq!(l.dims[0].stride, c(-1));
}

/// A use of the destination's memory *between* the web's creation and the
/// circuit point that overlaps the written region must defeat the
/// optimization (safety property 4).
#[test]
fn overlapping_destination_use_defeats_circuit() {
    let mut b = Builder::new("unsafe_use");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let xss = body.replicate("xss", vec![p(n) * c(2)], ScalarExp::f32(0.0));
    let bs = body.replicate("bs", vec![p(n)], ScalarExp::f32(1.0));
    // Read xss[0] — inside the region bs would be rebased into.
    let _r = body.scalar(
        "r",
        ElemType::F32,
        ScalarExp::Index(xss, vec![ScalarExp::i64(0)]),
    );
    let x2 = body.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(c(0), p(n), c(1))]),
        bs,
    );
    let blk = body.finish(vec![x2]);
    let prog = b.finish(blk);
    let (_, opt) = compile_both(&prog, base_env(&[(n, 1)]));
    assert_eq!(find_update_elided(&opt.program.body), Some(false));
    assert_eq!(opt.report.successes(), 0);
}

/// A *disjoint* use of the destination memory is fine (fig. 4b line 2
/// analogue): reading the other half of xss does not defeat the circuit.
#[test]
fn disjoint_destination_use_is_allowed() {
    let mut b = Builder::new("safe_use");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let xss = body.replicate("xss", vec![p(n) * c(2)], ScalarExp::f32(0.0));
    let bs = body.replicate("bs", vec![p(n)], ScalarExp::f32(1.0));
    // Read xss[n + {(n:1)}] — the half NOT written by the circuit.
    let other = body.slice(
        "other",
        xss,
        Transform::LmadSlice(Lmad::new(p(n), vec![Dim::new(p(n), 1)])),
    );
    let _sum = body.map_lambda("sums", p(n), vec![other], ElemType::F32, |lb, ps| {
        let s = lb.scalar("s", ElemType::F32, ScalarExp::var(ps[0]));
        vec![s]
    });
    let x2 = body.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(c(0), p(n), c(1))]),
        bs,
    );
    let blk = body.finish(vec![x2]);
    let prog = b.finish(blk);
    let (_, opt) = compile_both(&prog, base_env(&[(n, 1)]));
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(true),
        "report: {:?}",
        opt.report.candidates
    );
}

/// Fig. 5a: the circuited array is produced by an `if`; both branches'
/// results must be constructible in the destination memory.
fn fig5a() -> (Program, Env) {
    let mut b = Builder::new("fig5a");
    let n = b.scalar_param("n", ElemType::I64);
    let cflag = b.scalar_param("cond", ElemType::Bool);
    let mut body = b.block();
    let xss = body.replicate("xss", vec![p(n) * c(2)], ScalarExp::f32(0.0));
    // bs = if cond then replicate 1.0 else replicate 2.0
    let mut tb = b.block();
    let bst = tb.replicate("bs_then", vec![p(n)], ScalarExp::f32(1.0));
    let then_b = tb.finish(vec![bst]);
    let mut eb = b.block();
    let bse = eb.replicate("bs_else", vec![p(n)], ScalarExp::f32(2.0));
    let else_b = eb.finish(vec![bse]);
    let bs = body.if_(
        vec!["bs"],
        vec![Type::array(ElemType::F32, vec![p(n)])],
        ScalarExp::var(cflag),
        then_b,
        else_b,
    )[0];
    let x2 = body.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(p(n), p(n), c(1))]),
        bs,
    );
    let blk = body.finish(vec![x2]);
    (b.finish(blk), base_env(&[(n, 1)]))
}

#[test]
fn fig5a_circuits_through_if() {
    let (prog, env) = fig5a();
    let (_, opt) = compile_both(&prog, env);
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(true),
        "report: {:?}",
        opt.report.candidates
    );
    assert_eq!(opt.report.successes(), 1);
}

/// Fig. 5b: the circuited array is produced by a loop; the body result,
/// the merge parameter and the initializer all land in the destination.
fn fig5b() -> (Program, Env) {
    let mut b = Builder::new("fig5b");
    let n = b.scalar_param("n", ElemType::I64);
    let k = b.scalar_param("k", ElemType::I64);
    let mut body = b.block();
    let xss = body.replicate("xss", vec![p(n) * c(2)], ScalarExp::f32(0.0));
    let as0 = body.replicate("as0", vec![p(n)], ScalarExp::f32(1.0));
    let param = body.loop_param("as", as0);
    let idx = body.loop_index("i");
    let mut lb = b.block();
    // bs' = map (λx → x * 2) as   (fresh each iteration)
    let bsp = lb.map_lambda("bs'", p(n), vec![param], ElemType::F32, |ib, ps| {
        let s = ib.scalar(
            "t",
            ElemType::F32,
            ScalarExp::bin(
                arraymem_ir::BinOp::Mul,
                ScalarExp::var(ps[0]),
                ScalarExp::f32(2.0),
            ),
        );
        vec![s]
    });
    let loop_body = lb.finish(vec![bsp]);
    let bs = body.loop_(
        vec!["bs"],
        vec![(param, b.ty(as0))],
        vec![as0],
        idx,
        p(k),
        loop_body,
    )[0];
    let x2 = body.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(p(n), p(n), c(1))]),
        bs,
    );
    let blk = body.finish(vec![x2]);
    (b.finish(blk), base_env(&[(n, 1), (k, 1)]))
}

#[test]
fn fig5b_circuits_through_loop() {
    let (prog, env) = fig5b();
    let (_, opt) = compile_both(&prog, env);
    let elided = find_update_elided(&opt.program.body);
    assert_eq!(elided, Some(true), "report: {:?}", opt.report.candidates);
}

/// Fig. 5b's counter-example (footnote 23): an iterative stencil — the
/// body reads the merge parameter *after* the fresh result is created —
/// must NOT circuit (values of iteration i-1 would be clobbered).
#[test]
fn loop_with_param_use_after_def_fails() {
    let mut b = Builder::new("stencilish");
    let n = b.scalar_param("n", ElemType::I64);
    let k = b.scalar_param("k", ElemType::I64);
    let mut body = b.block();
    let xss = body.replicate("xss", vec![p(n) * c(2)], ScalarExp::f32(0.0));
    let as0 = body.replicate("as0", vec![p(n)], ScalarExp::f32(1.0));
    let param = body.loop_param("as", as0);
    let idx = body.loop_index("i");
    let mut lb = b.block();
    let bsp = lb.map_lambda("bs'", p(n), vec![param], ElemType::F32, |ib, ps| {
        let s = ib.scalar("t", ElemType::F32, ScalarExp::var(ps[0]));
        vec![s]
    });
    // A later use of the merge parameter (after bs' is created).
    let _late = lb.scalar(
        "late",
        ElemType::F32,
        ScalarExp::Index(param, vec![ScalarExp::i64(0)]),
    );
    let loop_body = lb.finish(vec![bsp]);
    let bs = body.loop_(
        vec!["bs"],
        vec![(param, b.ty(as0))],
        vec![as0],
        idx,
        p(k),
        loop_body,
    )[0];
    let x2 = body.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(p(n), p(n), c(1))]),
        bs,
    );
    let blk = body.finish(vec![x2]);
    let prog = b.finish(blk);
    let (_, opt) = compile_both(&prog, base_env(&[(n, 1), (k, 1)]));
    assert_eq!(find_update_elided(&opt.program.body), Some(false));
}

/// Fig. 6a: transitive chaining — as and bs circuit into cs (a concat),
/// which itself circuits into yss.
fn fig6a() -> (Program, Env) {
    let mut b = Builder::new("fig6a");
    let n = b.scalar_param("n", ElemType::I64);
    let i = b.scalar_param("i", ElemType::I64);
    let mut body = b.block();
    let yss = body.replicate("yss", vec![p(n), p(n) * c(2)], ScalarExp::f32(0.0));
    let a = body.replicate("as", vec![p(n)], ScalarExp::f32(1.0));
    let bs = body.replicate("bs", vec![p(n)], ScalarExp::f32(2.0));
    let cs = body.concat("cs", vec![a, bs]);
    let y2 = body.update(
        "yss2",
        yss,
        SliceSpec::Triplet(vec![
            TripletSlice::Fix(p(i)),
            TripletSlice::range(c(0), p(n) * c(2), c(1)),
        ]),
        cs,
    );
    let blk = body.finish(vec![y2]);
    let mut env = base_env(&[(n, 1), (i, 0)]);
    env.assume_le(i, p(n) - c(1));
    (b.finish(blk), env)
}

#[test]
fn fig6a_transitive_chaining() {
    let (prog, env) = fig6a();
    let (unopt, opt) = compile_both(&prog, env);
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(true),
        "report: {:?}",
        opt.report.candidates
    );
    assert_eq!(
        find_concat_elided(&opt.program.body),
        Some(vec![true, true]),
        "report: {:?}",
        opt.report.candidates
    );
    // All three candidates (cs into yss; as and bs into cs-in-yss).
    assert_eq!(opt.report.successes(), 3);
    // Paper footnote 24: the rebased index functions are
    //   cs ↦ t + {(2n : 1)}, as ↦ t + {(n : 1)}, bs ↦ t + n + {(n : 1)}
    // with t = i·2n.
    let mut bindings = std::collections::HashMap::new();
    crate::introduce::collect_bindings(&opt.program.body, &mut bindings);
    let mut names: std::collections::HashMap<String, Var> = bindings
        .keys()
        .map(|v| (format!("{v}").split('#').next().unwrap().to_string(), *v))
        .collect();
    for (v, _) in &prog.params {
        names.insert(format!("{v}").split('#').next().unwrap().to_string(), *v);
    }
    let t = p(names["i"]) * p(names["n"]) * c(2);
    let bs_l = bindings[&names["bs"]].ixfn.as_single().unwrap().clone();
    assert_eq!(bs_l.offset, t.clone() + p(names["n"]));
    let as_l = bindings[&names["as"]].ixfn.as_single().unwrap().clone();
    assert_eq!(as_l.offset, t);
    // Allocations: only yss's remains.
    assert!(count_allocs(&opt.program.body) < count_allocs(&unopt.program.body));
    assert_eq!(count_allocs(&opt.program.body), 1);
}

/// The NW inner step (§III-A): LMAD-slice reads, a block kernel, and an
/// LMAD-slice update inside the anti-diagonal loop. The update must be
/// elided — this is the paper's flagship application of Fig. 9.
pub fn nw_step_program() -> (Program, Env) {
    let mut b = Builder::new("nw_step");
    let n = b.scalar_param("nwn", ElemType::I64);
    let q = b.scalar_param("nwq", ElemType::I64);
    let bsz = b.scalar_param("nwb", ElemType::I64);
    let a = b.array_param("A", ElemType::I64, vec![p(n) * p(n)]);
    let mut body = b.block();

    let param = body.loop_param("Ait", a);
    let idx = body.loop_index("i");
    let mut lb = b.block();
    // Rvert = i·b + {(i+1 : n·b − b), (b+1 : n)}
    let rvert = lb.slice(
        "Rvert",
        param,
        Transform::LmadSlice(Lmad::new(
            p(idx) * p(bsz),
            vec![
                Dim::new(p(idx) + c(1), p(n) * p(bsz) - p(bsz)),
                Dim::new(p(bsz) + c(1), p(n)),
            ],
        )),
    );
    // Rhoriz = i·b + 1 + {(i+1 : n·b − b), (b : 1)}
    let rhoriz = lb.slice(
        "Rhoriz",
        param,
        Transform::LmadSlice(Lmad::new(
            p(idx) * p(bsz) + c(1),
            vec![
                Dim::new(p(idx) + c(1), p(n) * p(bsz) - p(bsz)),
                Dim::new(p(bsz), c(1)),
            ],
        )),
    );
    // X = map2 process_block Rvert Rhoriz : one b×b block per diagonal pos.
    let x = lb.map_kernel(
        "X",
        "nw_process_block",
        p(idx) + c(1),
        vec![p(bsz), p(bsz)],
        ElemType::I64,
        vec![rvert, rhoriz],
        vec![ScalarExp::var(n), ScalarExp::var(bsz)],
    );
    // A[i·b + n + 1 + {(i+1 : nb−b), (b : n), (b : 1)}] = X
    let w = Lmad::new(
        p(idx) * p(bsz) + p(n) + c(1),
        vec![
            Dim::new(p(idx) + c(1), p(n) * p(bsz) - p(bsz)),
            Dim::new(p(bsz), p(n)),
            Dim::new(p(bsz), c(1)),
        ],
    );
    let a2 = lb.update("A2", param, SliceSpec::Lmad(w), x);
    let loop_body = lb.finish(vec![a2]);
    let afinal = body.loop_(
        vec!["Afinal"],
        vec![(param, b.ty(a))],
        vec![a],
        idx,
        p(q),
        loop_body,
    )[0];
    let blk = body.finish(vec![afinal]);

    let mut env = Env::new();
    env.define(n, p(q) * p(bsz) + c(1));
    env.assume_ge(q, 2);
    env.assume_ge(bsz, 2);
    (b.finish(blk), env)
}

#[test]
fn nw_update_is_short_circuited() {
    let (prog, env) = nw_step_program();
    let (unopt, opt) = compile_both(&prog, env);
    assert_eq!(find_update_elided(&unopt.program.body), Some(false));
    assert_eq!(
        find_update_elided(&opt.program.body),
        Some(true),
        "NW update should be elided; report: {:?}",
        opt.report.candidates
    );
    // The mapnest also constructs its blocks in place.
    assert!(opt.report.in_place_maps >= 1);
    // X's temporary allocation inside the loop is gone.
    assert!(count_allocs(&opt.program.body) < count_allocs(&unopt.program.body));
}

/// Without the `n = q·b + 1` relation the non-overlap proof cannot go
/// through, and NW must fail conservatively.
#[test]
fn nw_fails_without_assumptions() {
    let (prog, _) = nw_step_program();
    let weak = Env::new();
    let opt = compile(&prog, &Options::optimized().with_env(weak)).unwrap();
    assert_eq!(find_update_elided(&opt.program.body), Some(false));
}

#[test]
fn unopt_pipeline_introduces_memory_everywhere() {
    let (prog, env) = fig1_left();
    let unopt = compile(&prog, &Options::default().with_env(env)).unwrap();
    // Every array binding must have a memory annotation.
    fn check(block: &Block) {
        for stm in &block.stms {
            for pe in &stm.pat {
                if pe.ty.is_array() {
                    assert!(pe.mem.is_some(), "missing binding on {}", pe.var);
                }
            }
            match &stm.exp {
                Exp::Loop { body, .. } => check(body),
                Exp::If { then_b, else_b, .. } => {
                    check(then_b);
                    check(else_b);
                }
                _ => {}
            }
        }
    }
    check(&unopt.program.body);
}

#[test]
fn hoisting_moves_allocs_before_uses() {
    let (prog, env) = fig4a();
    let opt = compile(&prog, &Options::default().with_env(env)).unwrap();
    // After hoisting, all allocs precede all non-alloc statements that do
    // not define their sizes.
    let first_nonalloc = opt
        .program
        .body
        .stms
        .iter()
        .position(|s| !matches!(s.exp, Exp::Alloc { .. } | Exp::Scalar(_)))
        .unwrap();
    let last_alloc = opt
        .program
        .body
        .stms
        .iter()
        .rposition(|s| matches!(s.exp, Exp::Alloc { .. }))
        .unwrap();
    assert!(
        last_alloc < first_nonalloc,
        "allocs not hoisted: program:\n{}",
        arraymem_ir::pretty::program_to_string(&opt.program)
    );
}

/// Memory annotations are an add-on: deleting them must leave a program
/// that still validates (paper §I).
#[test]
fn memory_annotations_are_deletable() {
    let (prog, env) = fig6a();
    let opt = compile(&prog, &Options::optimized().with_env(env)).unwrap();
    let mut stripped = opt.program.clone();
    fn strip(block: &mut Block) {
        for stm in &mut block.stms {
            for pe in &mut stm.pat {
                pe.mem = None;
            }
            match &mut stm.exp {
                Exp::Loop { params, body, .. } => {
                    for pe in params.iter_mut() {
                        pe.mem = None;
                    }
                    strip(body);
                }
                Exp::If { then_b, else_b, .. } => {
                    strip(then_b);
                    strip(else_b);
                }
                Exp::Map(m) => {
                    if let MapBody::Lambda { body, .. } = &mut m.body {
                        strip(body);
                    }
                }
                _ => {}
            }
        }
    }
    strip(&mut stripped.body);
    arraymem_ir::validate::validate(&stripped).unwrap();
}

/// Mapnest rows are marked in-place by the post-pass even without a
/// circuit (fresh output memory can never alias the inputs).
#[test]
fn fresh_map_rows_are_in_place() {
    let mut b = Builder::new("fresh_map");
    let n = b.scalar_param("fm_n", ElemType::I64);
    let src = b.array_param("src", ElemType::F32, vec![p(n), c(8)]);
    let mut body = b.block();
    let out = body.map_kernel(
        "rows",
        "copy_rows",
        p(n),
        vec![c(8)],
        ElemType::F32,
        vec![src],
        vec![],
    );
    let blk = body.finish(vec![out]);
    let prog = b.finish(blk);
    let opt = compile(&prog, &Options::optimized().with_env(base_env(&[(n, 1)]))).unwrap();
    assert_eq!(opt.report.in_place_maps, 1);
    fn find_map(block: &Block) -> Option<bool> {
        for stm in &block.stms {
            if let Exp::Map(m) = &stm.exp {
                return Some(m.in_place_result);
            }
        }
        None
    }
    assert_eq!(find_map(&opt.program.body), Some(true));
}

/// The report records failures with reasons.
#[test]
fn report_has_reasons() {
    let (prog, env) = fig1_right();
    let (_, opt) = compile_both(&prog, env);
    assert_eq!(opt.report.candidates.len(), 1);
    assert!(!opt.report.candidates[0].succeeded);
    assert!(!opt.report.candidates[0].reason.is_empty());
}

// Keep Stm import used even if future edits drop other uses.
#[allow(dead_code)]
fn _touch(_: &Stm) {}

// ---------------------------------------------------------------------
// Hoisting & cleanup micro-tests
// ---------------------------------------------------------------------

#[test]
fn hoist_respects_size_dependencies() {
    // An alloc whose size depends on a computed scalar must not move
    // above that scalar's definition.
    let mut b = Builder::new("hoist_dep");
    let n = b.scalar_param("hd_n", ElemType::I64);
    let a = b.array_param("hd_A", ElemType::F32, vec![p(n)]);
    let mut body = b.block();
    let m = body.scalar(
        "m",
        ElemType::I64,
        ScalarExp::Index(a, vec![ScalarExp::i64(0)]),
    );
    // Use m in a shape: replicate [n] of value read via m is awkward; use
    // an update to keep m alive and check ordering via free vars instead.
    let r = body.replicate("r", vec![p(n)], ScalarExp::f32(1.0));
    let r2 = body.update_scalar(
        "r2",
        r,
        vec![ScalarExp::i64(0)],
        ScalarExp::un(arraymem_ir::UnOp::ToF32, ScalarExp::var(m)),
    );
    let blk = body.finish(vec![r2]);
    let prog = b.finish(blk);
    let compiled = compile(&prog, &Options::default().with_env(base_env(&[(n, 1)]))).unwrap();
    // Every statement's free vars must be defined before it (validate
    // re-checks scoping after hoisting).
    arraymem_ir::validate::validate(&compiled.program).unwrap();
}

#[test]
fn cleanup_removes_only_dead_allocs() {
    let (prog, env) = fig4a();
    let opt = compile(&prog, &Options::optimized().with_env(env)).unwrap();
    // fig4a: as/bs allocs removed, xss alloc retained.
    assert_eq!(count_allocs(&opt.program.body), 1);
    arraymem_ir::validate::validate(&opt.program).unwrap();
}

/// Disabling hoisting defeats fig4a (the concat's memory is allocated
/// after as/bs are created).
#[test]
fn ablation_hoisting_matters_for_fig4a() {
    let (prog, env) = fig4a();
    let opt = compile(
        &prog,
        &Options {
            hoist: false,
            ..Options::optimized().with_env(env)
        },
    )
    .unwrap();
    assert_eq!(opt.report.successes(), 0, "{:?}", opt.report.candidates);
}
