//! Structured optimization remarks (in the spirit of LLVM's `-Rpass`
//! family): every pipeline stage records machine-readable notes about
//! what it did — and, for short-circuiting, *which* legality check killed
//! each rejected candidate — so tests, the `tables` harness and users can
//! consume the optimizer's decisions without parsing prose.

use arraymem_ir::Var;

/// The machine-readable identity of the legality check that rejected a
/// short-circuit candidate. One variant per check of §V's safety
/// properties (plus the implementation-level checks layered on top); the
/// human-readable detail lives in [`CandidateOutcome::reason`]
/// (`crate::CandidateOutcome`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RejectReason {
    /// Property 1: the source is used again after the circuit point.
    NotLastUse,
    /// A concat argument aliases the result or another argument — eliding
    /// it would rebase one alias web onto two destinations (footnote 17;
    /// the fuzzer's historical "aliasing concat args" bug class).
    AliasingConcatArg,
    /// The candidate's destination block was vacated by another web's
    /// rebase before this candidate finished (the fuzzer's historical
    /// "stale rebase" bug class).
    DestinationVacated,
    /// Property 2: the destination memory is not allocated at the web's
    /// fresh definition.
    DestinationNotAllocated,
    /// Property 3: no rebased index function exists — the circuit slice
    /// is not expressible as a transform of the destination's layout.
    SliceNotExpressible,
    /// Property 3b: the rebased index function could not be translated
    /// into scope at the definition it must annotate.
    IxfnNotInScope,
    /// Property 4: a write through the web may overlap a recorded use of
    /// the destination memory (the static non-overlap test of §V-C, its
    /// loop/mapnest variants, or a read-region conflict).
    OverlapTestFailed,
    /// The backward walk ended without reaching the web's fresh
    /// definition.
    FreshDefNotFound,
    /// Loop discipline (Fig. 5b condition 3): the merge parameter is used
    /// at or after the fresh definition, or escapes the body.
    MergeParamOrder,
    /// A change-of-layout transformation in the web is not invertible.
    NonInvertibleTransform,
    /// A web member is defined by an expression the analysis does not
    /// handle (scalar, alloc).
    UnsupportedDefinition,
    /// The candidate writes through a **runtime-indexed** (scatter)
    /// slice: the written positions are read from an index array at
    /// execution time, so no affine rebased index function exists and
    /// the non-overlap test has nothing to reason about (see
    /// `arraymem_lmad::OpaqueIxFn`). The copy is kept; bounds are
    /// enforced dynamically instead.
    RuntimeIndexedWrite,
}

impl RejectReason {
    /// Every variant, for taxonomy-completeness tests.
    pub const ALL: [RejectReason; 12] = [
        RejectReason::NotLastUse,
        RejectReason::AliasingConcatArg,
        RejectReason::DestinationVacated,
        RejectReason::DestinationNotAllocated,
        RejectReason::SliceNotExpressible,
        RejectReason::IxfnNotInScope,
        RejectReason::OverlapTestFailed,
        RejectReason::FreshDefNotFound,
        RejectReason::MergeParamOrder,
        RejectReason::NonInvertibleTransform,
        RejectReason::UnsupportedDefinition,
        RejectReason::RuntimeIndexedWrite,
    ];
}

/// Why the merge pass kept a block's own allocation instead of moving it
/// into an earlier block — the closed reject-reason taxonomy of the
/// merge pass, mirroring [`RejectReason`] for short-circuiting. The
/// precedence (interference over size over element type) reports the
/// reason closest to an actual merge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MergeReject {
    /// The block's variable is consumed by an expression (a loop's
    /// existential-memory initializer), backs a non-top-level binding, or
    /// is a program result: its liveness exceeds what top-level intervals
    /// capture.
    Escapes,
    /// Every candidate host holds a different element type.
    ElemMismatch,
    /// The block's size could not be proved to fit any candidate host.
    SizeNotProvable,
    /// Live ranges overlap and footprints are not provably disjoint for
    /// every candidate host.
    Interference,
    /// The block is accessed through runtime indices (a gather read or a
    /// scatter write), so it has no affine footprint summary to prove
    /// disjointness with: footprint-justified merging is off the table
    /// for it, and only fully disjoint lifetimes could have let it share
    /// a block (see `arraymem_lmad::OpaqueIxFn`).
    RuntimeIndexed,
}

impl MergeReject {
    /// Every variant, for taxonomy-completeness tests.
    pub const ALL: [MergeReject; 5] = [
        MergeReject::Escapes,
        MergeReject::ElemMismatch,
        MergeReject::SizeNotProvable,
        MergeReject::Interference,
        MergeReject::RuntimeIndexed,
    ];
}

/// Why the parallel-safety stage stopped short of the strongest verdict
/// for a kernel mapnest — the closed reject-reason taxonomy of the
/// `par_safety` pass, mirroring [`RejectReason`] and [`MergeReject`].
/// `NeedsBuffer`-level records carry the reason direct writes were not
/// proven safe; `Serial`-level records carry the reason even the map's
/// existing direct-write schedule could not be proven race-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParReject {
    /// The map's result has no memory annotation to derive a write LMAD
    /// from.
    NoMemBinding,
    /// The per-iteration write footprint is not expressible as a slice of
    /// the result's index function (e.g. the outer dimension cannot be
    /// fixed symbolically).
    RowNotExtractable,
    /// `non_overlap` could not prove the write rows of two distinct
    /// iterations disjoint.
    WriteOverlapNotProven,
    /// An input view aliases the result's memory block and neither full
    /// disjointness nor row-wise disjointness is provable.
    InputInterference,
    /// Every proof succeeded, but the pass did not mark the map in-place:
    /// it keeps the private-row buffers and runs parallel through them.
    PrivateBuffer,
    /// The statement writes through a **runtime-indexed** (scatter)
    /// footprint: per-iteration write disjointness is not just unproven
    /// but unprovable — the written positions are data (see
    /// `arraymem_lmad::OpaqueIxFn`). The executor keeps the serial
    /// schedule; checked mode validates every index against its extent.
    RuntimeIndexedWrite,
}

impl ParReject {
    /// Every variant, for taxonomy-completeness tests.
    pub const ALL: [ParReject; 6] = [
        ParReject::NoMemBinding,
        ParReject::RowNotExtractable,
        ParReject::WriteOverlapNotProven,
        ParReject::InputInterference,
        ParReject::PrivateBuffer,
        ParReject::RuntimeIndexedWrite,
    ];
}

/// What a remark reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RemarkKind {
    /// `short_circuit`: a candidate succeeded and its copy was elided.
    CircuitElided,
    /// `short_circuit`: a candidate was rejected by the named check.
    CircuitRejected(RejectReason),
    /// `short_circuit`: a kernel mapnest constructs its rows in place.
    MapInPlace,
    /// `antiunify`: an `if`/`loop` result carries existential memory.
    ExistentialMemory,
    /// `introduce`: anti-unification failed and a normalization copy was
    /// inserted (§IV-C).
    NormalizationCopy,
    /// `hoist`: allocations (and their size scalars) moved upward.
    Hoisted,
    /// `merge`: a block's tenants were moved into another allocation.
    BlocksMerged,
    /// `merge` (coloring): a host allocation's size was grown so a
    /// provably larger later member could share its color.
    HostGrown,
    /// `merge` (coloring): a loop's dead carried ping-pong block is
    /// released inside the body each iteration instead of surviving to
    /// the end-of-run sweep.
    CarriedRelease,
    /// `merge`: a block kept its own allocation for the named reason.
    MergeRejected(MergeReject),
    /// `cleanup`: a dead allocation was removed.
    DeadAllocRemoved,
    /// `par_safety`: a kernel mapnest's per-iteration write LMADs were
    /// proven chunk-wise disjoint — it runs parallel and in place.
    MapParallelSafe,
    /// `par_safety`: a kernel mapnest fell short of the `Safe` verdict
    /// for the named reason (it runs buffered-parallel or serial).
    MapParRejected(ParReject),
    /// `release`: early release points were scheduled.
    ReleaseScheduled,
}

/// One structured remark: which pass, anchored to which statement (when
/// one is identifiable), what happened, and a human-readable message.
#[derive(Clone, Debug)]
pub struct Remark {
    /// Name of the pipeline stage that emitted the remark.
    pub pass: &'static str,
    /// The statement the remark anchors to — its first pattern variable —
    /// when the remark is about one statement rather than the program.
    pub stm: Option<Var>,
    pub kind: RemarkKind,
    pub message: String,
}

impl std::fmt::Display for Remark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.pass)?;
        if let Some(v) = self.stm {
            write!(f, "{v}: ")?;
        }
        write!(f, "{}", self.message)
    }
}
