//! Parallel-safety analysis for kernel mapnests (the `par_safety` stage).
//!
//! The executor dispatches a kernel mapnest's iterations across worker
//! threads in arbitrary chunks. That schedule is only legal when no two
//! iterations touch the same memory in conflicting ways. This pass
//! derives, for every kernel map, the symbolic per-iteration *write*
//! LMAD — row `i` of the result's (possibly rebased) index function —
//! and proves chunk-wise disjointness with the same
//! [`non_overlap`](arraymem_lmad::overlap::non_overlap) test the
//! short-circuiting analysis trusts (§V-C): writes of iteration `i` must
//! be disjoint from writes of every iteration `j = i + 1 + d`, `d ≥ 0`,
//! within the map's width. Inputs aliasing the result's block are held to
//! the row-wise read/write discipline the in-place marking pass already
//! enforces.
//!
//! The verdict is a three-level [`ParLevel`]:
//!
//! - [`Safe`](ParLevel::Safe) — direct writes (no private-row buffer) and
//!   parallel dispatch are both proven race-free. The checked VM re-proves
//!   the disjointness **concretely by enumeration** before each dispatch
//!   and downgrades to serial (with a `ParOverlap` diagnostic) if the
//!   symbolic verdict was wrong.
//! - [`NeedsBuffer`](ParLevel::NeedsBuffer) — parallel dispatch is fine,
//!   but iterations must keep writing through private row buffers with a
//!   sequential copy-out (the implicit copy of §V-A(e)).
//! - [`Serial`](ParLevel::Serial) — the map writes its result directly
//!   (it is marked in-place or has scalar rows) yet cross-iteration
//!   disjointness is *not* provable: the only sound schedule is serial.
//!
//! Every non-`Safe` verdict names the failed proof via the closed
//! [`ParReject`] taxonomy. Records travel to the executor in
//! [`Report::par_safety`](crate::Report) — the same transport the circuit
//! checks and merge records use — and lowering threads them into the
//! `ExecPlan`'s map instructions.
//!
//! The `force_unsafe_parallel` mutation hook upgrades every kernel map to
//! `Safe` regardless of proof, so tests can demonstrate the checked VM's
//! `ParOverlap` detector actually fires.

use crate::remark::ParReject;
use crate::short_circuit::{ixfn_set, rowwise_map_disjoint};
use arraymem_ir::{Block, Exp, MapBody, MapExp, MemBinding, Program, SliceSpec, Var};
use arraymem_lmad::overlap::non_overlap;
use arraymem_lmad::{IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Env, Poly, Sym};
use std::collections::HashMap;

/// How a kernel mapnest may be scheduled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParLevel {
    /// Iterations write disjoint regions: run parallel, in place.
    Safe,
    /// Run parallel, but through private row buffers with copy-out.
    NeedsBuffer,
    /// Direct writes with unproven disjointness: run serially.
    Serial,
}

/// One mapnest's parallel-safety verdict, keyed by the variable its
/// statement binds. `Debug`-rendered into the executor's plan-cache key
/// (like `CircuitCheck` and `MergeRecord`).
#[derive(Clone, Debug)]
pub struct ParSafetyRecord {
    /// First pattern variable of the map statement.
    pub stm: Var,
    pub level: ParLevel,
    /// For non-`Safe` verdicts (or forced ones): the failed proof.
    pub reject: Option<ParReject>,
    /// Set when `force_unsafe_parallel` overrode the analysis to `Safe`.
    pub forced: bool,
}

/// Analyze every kernel mapnest of `prog`, returning one record per map.
/// `force_unsafe` is the test-only mutation hook: every verdict becomes
/// [`ParLevel::Safe`] (the genuine reject, if any, is kept on the record).
pub fn par_safety(prog: &Program, env: &Env, force_unsafe: bool) -> Vec<ParSafetyRecord> {
    let mut bindings: HashMap<Var, MemBinding> = HashMap::new();
    crate::introduce::collect_bindings(&prog.body, &mut bindings);
    for (v, ty) in &prog.params {
        if ty.is_array() {
            bindings.entry(*v).or_insert_with(|| MemBinding {
                block: crate::memtable::param_block_sym(*v),
                ixfn: IndexFn::row_major(ty.shape()),
            });
        }
    }
    let mut records = Vec::new();
    walk(&prog.body, env, &bindings, force_unsafe, &mut records);
    records
}

fn walk(
    block: &Block,
    env: &Env,
    bindings: &HashMap<Var, MemBinding>,
    force: bool,
    out: &mut Vec<ParSafetyRecord>,
) {
    for stm in &block.stms {
        match &stm.exp {
            Exp::Map(m) => {
                if matches!(&m.body, MapBody::Kernel { .. }) {
                    let out_mb = stm.pat[0]
                        .mem
                        .clone()
                        .or_else(|| bindings.get(&stm.pat[0].var).cloned());
                    let (level, reject) = classify(m, out_mb, env, bindings);
                    let forced = force && level != ParLevel::Safe;
                    out.push(ParSafetyRecord {
                        stm: stm.pat[0].var,
                        level: if force { ParLevel::Safe } else { level },
                        reject,
                        forced,
                    });
                }
            }
            Exp::Update {
                slice: SliceSpec::Scatter(_),
                ..
            } => {
                // A scatter's written positions are data: per-iteration
                // write disjointness is unprovable, not merely unproven
                // (see `arraymem_lmad::OpaqueIxFn`). The record pins the
                // serial schedule — and enters the plan-cache key — so
                // the give-up is observable, never silent. The
                // `force_unsafe_parallel` hook deliberately does not
                // apply: the executor has no parallel schedule for a
                // scatter to be forced onto.
                out.push(ParSafetyRecord {
                    stm: stm.pat[0].var,
                    level: ParLevel::Serial,
                    reject: Some(ParReject::RuntimeIndexedWrite),
                    forced: false,
                });
            }
            Exp::If { then_b, else_b, .. } => {
                walk(then_b, env, bindings, force, out);
                walk(else_b, env, bindings, force, out);
            }
            Exp::Loop {
                index, count, body, ..
            } => {
                let mut env2 = env.clone();
                env2.assume_ge(*index, 0);
                env2.assume_le(*index, count.clone() - Poly::constant(1));
                walk(body, &env2, bindings, force, out);
            }
            _ => {}
        }
    }
}

/// Classify one kernel map. `direct` maps (in-place or scalar-row) write
/// the result memory straight from their iterations, so an unproven
/// disjointness means `Serial`; buffered maps privatize their writes, so
/// a failed proof merely keeps the buffer.
fn classify(
    m: &MapExp,
    out_mb: Option<MemBinding>,
    env: &Env,
    bindings: &HashMap<Var, MemBinding>,
) -> (ParLevel, Option<ParReject>) {
    let scalar_rows = matches!(&m.body, MapBody::Kernel { row_shape, .. } if row_shape.is_empty());
    let direct = m.in_place_result || scalar_rows;
    let fallback = |why: ParReject| {
        if direct {
            (ParLevel::Serial, Some(why))
        } else {
            (ParLevel::NeedsBuffer, Some(why))
        }
    };
    let Some(out_mb) = out_mb else {
        return fallback(ParReject::NoMemBinding);
    };
    if let Err(why) = writes_disjoint(&out_mb.ixfn, &m.width, env) {
        return fallback(why);
    }
    if !inputs_clear(m, &out_mb, env, bindings) {
        return fallback(ParReject::InputInterference);
    }
    if direct {
        (ParLevel::Safe, None)
    } else {
        (ParLevel::NeedsBuffer, Some(ParReject::PrivateBuffer))
    }
}

/// Prove that the write rows of two distinct iterations are disjoint:
/// with fresh symbols `i, d ≥ 0` and `j = i + 1 + d`, both within
/// `[0, width)`, every LMAD of row `i` must be `non_overlap` with every
/// LMAD of row `j`.
fn writes_disjoint(out_ixfn: &IndexFn, width: &Poly, env: &Env) -> Result<(), ParReject> {
    let i = Sym::fresh("par_i");
    let d = Sym::fresh("par_d");
    let row = |at: Poly| -> Option<Vec<Lmad>> {
        let shape = out_ixfn.shape();
        if shape.is_empty() {
            return None;
        }
        let mut ts = vec![TripletSlice::Fix(at)];
        for s in &shape[1..] {
            ts.push(TripletSlice::full(s.clone()));
        }
        Some(out_ixfn.transform(&Transform::Slice(ts))?.lmads.clone())
    };
    let mut env2 = env.clone();
    env2.assume_ge(i, 0);
    env2.assume_ge(d, 0);
    // Both i and j = i + 1 + d lie in [0, width).
    env2.assume_le(i, width.clone() - Poly::constant(2) - Poly::var(d));
    env2.assume_le(d, width.clone() - Poly::constant(2));
    let j = Poly::var(i) + Poly::constant(1) + Poly::var(d);
    let (Some(w_i), Some(w_j)) = (row(Poly::var(i)), row(j)) else {
        return Err(ParReject::RowNotExtractable);
    };
    for a in &w_i {
        for b in &w_j {
            if !non_overlap(a, b, &env2) {
                return Err(ParReject::WriteOverlapNotProven);
            }
        }
    }
    Ok(())
}

/// The input-aliasing discipline of the in-place marking pass, re-proved
/// here for scalar-row maps (which execute directly without ever being
/// marked in-place): every input sharing the result's block must be fully
/// disjoint from the output footprint, or row-wise disjoint across
/// iterations.
fn inputs_clear(
    m: &MapExp,
    out_mb: &MemBinding,
    env: &Env,
    bindings: &HashMap<Var, MemBinding>,
) -> bool {
    let out_set = ixfn_set(&out_mb.ixfn);
    let whole: &[usize] = match &m.body {
        MapBody::Kernel { whole_inputs, .. } => whole_inputs,
        MapBody::Lambda { .. } => &[],
    };
    for (ii, inp) in m.inputs.iter().enumerate() {
        let Some(imb) = bindings.get(inp) else {
            continue;
        };
        if imb.block != out_mb.block {
            continue;
        }
        if out_set.disjoint_from(&ixfn_set(&imb.ixfn), env) {
            continue;
        }
        let row_wise = !whole.contains(&ii) && imb.ixfn.rank() >= 1;
        if row_wise && rowwise_map_disjoint(&out_mb.ixfn, &imb.ixfn, &m.width, env) {
            continue;
        }
        return false;
    }
    true
}
