//! The paper's primary contribution: an LMAD-based notion of memory in the
//! IR, and the **array short-circuiting** optimization.
//!
//! The middle-end is organized as a [`pipeline::Pipeline`] of named
//! [`pipeline::Pass`] stages (all operating on the shared IR of
//! `arraymem-ir`, whose memory annotations are optional "add-ons"):
//!
//! 1. `introduce` ([`introduce`]) — insert `alloc` statements and
//!    `@mem → ixfn` annotations (paper §IV-C); `if`/`loop` results get
//!    *existential* memory via anti-unification ([`antiunify`]) of the
//!    index functions.
//! 2. `antiunify` — audit the existential-memory invariant and record
//!    which results carry existential memory.
//! 3. `hoist` ([`hoist`]) — aggressively hoist allocations upward,
//!    enabling the second safety property of short-circuiting (§V,
//!    property 2).
//! 4. `short_circuit` ([`short_circuit`]) — the bottom-up analysis of §V:
//!    detect circuit points, rebase the candidate's alias web into the
//!    destination memory, maintain the `U_xss`/`W_bs` access summaries,
//!    and verify non-overlap with the static test of §V-C; on success the
//!    update / concat copy is elided and mapnests construct their rows in
//!    place.
//! 5. `cleanup` ([`cleanup`]) — remove allocations whose memory became
//!    unreferenced.
//! 6. `par_safety` ([`par_safety`]) — prove, per kernel mapnest, that the
//!    per-iteration write LMADs are chunk-wise disjoint (via the same
//!    `non_overlap` test as §V-C), so the executor may run the map in
//!    place and in parallel; each verdict travels to the runtime as a
//!    [`ParSafetyRecord`].
//! 7. `release` ([`release`]) — schedule early block releases (the plan
//!    itself is recomputed at lowering time; the stage records its size).
//!
//! [`compile`] runs the standard pipeline and returns the optimized
//! program together with a [`Report`] of every short-circuit candidate and
//! a [`CompileReport`] of per-stage timings and structured [`Remark`]s.
//! The pipeline's fingerprint is stamped into the program
//! (`Program::pipeline_fingerprint`) so the executor's plan cache never
//! serves a plan compiled under a different pass configuration.

pub mod antiunify;
pub mod cleanup;
pub mod fingerprint;
pub mod hoist;
pub mod introduce;
pub mod memtable;
pub mod merge;
pub mod par_safety;
pub mod pipeline;
pub mod release;
pub mod remark;
pub mod short_circuit;

pub use fingerprint::{combine_fingerprints, fingerprint, fingerprint_items};
pub use memtable::MemTable;
pub use merge::{HostGrowth, MergeOutcome, MergeRecord, MergeReport};
pub use par_safety::{ParLevel, ParSafetyRecord};
pub use pipeline::{CompileReport, IrStats, Pass, PassCx, PassRun, Pipeline};
pub use release::ReleasePlan;
pub use remark::{MergeReject, ParReject, RejectReason, Remark, RemarkKind};
pub use short_circuit::{CandidateOutcome, CircuitCheck, Rejection, Report};

use arraymem_ir::Program;
use arraymem_symbolic::Env;

/// Compilation options. The extra switches exist for the ablation
/// studies (see `crates/bench/benches/ablations.rs`): each disables one
/// ingredient DESIGN.md calls out, so its contribution can be measured.
#[derive(Clone)]
pub struct Options {
    /// Run the array short-circuiting optimization.
    pub short_circuit: bool,
    /// Assumptions about the program's size parameters (e.g. `n = q·b+1`,
    /// `q ≥ 2`), used by the static non-overlap test.
    pub env: Env,
    /// Hoist allocations (§V property 2). Disabling defeats candidates
    /// whose destination memory is allocated after the fresh definition.
    pub hoist: bool,
    /// Let safe kernel mapnests construct rows directly in their result
    /// memory (§V-A(e)). Disabling keeps the per-instance private-row
    /// copy even where it is provably unnecessary.
    pub mapnest_in_place: bool,
    /// Run the memory block merging pass ([`merge`]): non-interfering
    /// allocations (disjoint live ranges, or provably disjoint LMAD
    /// footprints) share one block, cutting peak allocation.
    pub merge: bool,
    /// Whole-program coloring inside the merge pass: build the full
    /// interference graph over the candidate allocations, color it so
    /// *k* allocations share the chromatic number's worth of blocks
    /// (growing a host block when a later member is provably larger),
    /// and release dead loop-carried ping-pong blocks per iteration
    /// ([`merge::MergeRecord::CarriedRelease`]). Off, the pass degrades
    /// to the legacy greedy pairwise first-fit.
    pub coloring: bool,
    /// Run the parallel-safety analysis ([`par_safety`]): prove per
    /// kernel mapnest that iterations write disjoint rows, so the
    /// executor can dispatch them in parallel without private-row
    /// buffers. Disabling keeps the legacy schedule (parallel through
    /// buffers, direct writes trusted unverified).
    pub par_safety: bool,
    /// **Test-only mutation hook.** Approve short-circuit candidates past
    /// a failing write check, producing deliberately illegal elisions;
    /// the checked VM's sanitizer must catch them (see
    /// [`short_circuit::short_circuit_force_unsafe`]).
    pub force_unsafe_short_circuit: bool,
    /// **Test-only mutation hook.** Push interference-rejected merge
    /// candidates into a host block anyway; the checked VM's merge
    /// cross-check must catch the resulting footprint overlaps.
    pub force_unsafe_merge: bool,
    /// **Test-only mutation hook.** Mark every kernel mapnest
    /// parallel-safe regardless of proof; the checked VM's pre-dispatch
    /// enumeration must catch the resulting overlaps (as
    /// `Diagnostic::ParOverlap`) and serialize the map.
    pub force_unsafe_parallel: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            short_circuit: false,
            env: Env::default(),
            hoist: true,
            mapnest_in_place: true,
            merge: false,
            coloring: false,
            par_safety: true,
            force_unsafe_short_circuit: false,
            force_unsafe_merge: false,
            force_unsafe_parallel: false,
        }
    }
}

/// Whether [`Options::optimized`] defaults to whole-program coloring:
/// `true` unless the `ARRAYMEM_COLORING` environment variable is set to
/// `0`/`off`/`false` (the CI toggle sweep runs the whole suite in both
/// positions). Read once.
pub fn coloring_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| match std::env::var("ARRAYMEM_COLORING") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => true,
    })
}

impl Options {
    /// The standard optimized configuration: short-circuiting and block
    /// merging on, with every supporting ingredient (hoisting, in-place
    /// mapnests) at its default. `Options::default()` is the unoptimized
    /// baseline. Coloring follows [`coloring_default`] (on unless
    /// `ARRAYMEM_COLORING=0`).
    pub fn optimized() -> Options {
        Options {
            short_circuit: true,
            merge: true,
            coloring: coloring_default(),
            ..Options::default()
        }
    }

    /// This configuration with the given size-assumption environment.
    pub fn with_env(self, env: Env) -> Options {
        Options { env, ..self }
    }
}

/// The result of compilation.
pub struct Compiled {
    pub program: Program,
    /// The short-circuiting candidate report (every candidate considered).
    pub report: Report,
    /// Per-stage timings, delta stats and structured remarks.
    pub compile_report: CompileReport,
}

/// Run the standard memory pipeline over a (memory-free) source program.
pub fn compile(prog: &Program, opts: &Options) -> Result<Compiled, String> {
    Pipeline::standard().run(prog, opts)
}

/// As [`compile`], invoking `observe(stage_name, program)` with the input
/// program (stage `"input"`) and after every executed stage — the hook
/// behind per-pass IR snapshot tests.
pub fn compile_observed(
    prog: &Program,
    opts: &Options,
    observe: &mut dyn FnMut(&str, &Program),
) -> Result<Compiled, String> {
    Pipeline::standard().run_observed(prog, opts, observe)
}

#[cfg(test)]
mod tests;
