//! The paper's primary contribution: an LMAD-based notion of memory in the
//! IR, and the **array short-circuiting** optimization.
//!
//! Pipeline (all passes operate on the shared IR of `arraymem-ir`, whose
//! memory annotations are optional "add-ons"):
//!
//! 1. [`introduce`] — insert `alloc` statements and `@mem → ixfn`
//!    annotations (paper §IV-C); `if`/`loop` results get *existential*
//!    memory via anti-unification ([`antiunify`]) of the index functions.
//! 2. [`hoist`] — aggressively hoist allocations upward, enabling the
//!    second safety property of short-circuiting (§V, property 2).
//! 3. [`short_circuit`] — the bottom-up analysis of §V: detect circuit
//!    points, rebase the candidate's alias web into the destination
//!    memory, maintain the `U_xss`/`W_bs` access summaries, and verify
//!    non-overlap with the static test of §V-C; on success the update /
//!    concat copy is elided and mapnests construct their rows in place.
//! 4. [`cleanup`] — remove allocations whose memory became unreferenced.
//!
//! [`compile`] runs the whole pipeline and returns the optimized program
//! together with a [`Report`] of every candidate considered.

pub mod antiunify;
pub mod cleanup;
pub mod fingerprint;
pub mod hoist;
pub mod introduce;
pub mod memtable;
pub mod release;
pub mod short_circuit;

pub use fingerprint::{fingerprint, fingerprint_items};
pub use memtable::MemTable;
pub use release::ReleasePlan;
pub use short_circuit::{CandidateOutcome, CircuitCheck, Report};

use arraymem_ir::Program;
use arraymem_symbolic::Env;

/// Compilation options. The extra switches exist for the ablation
/// studies (see `crates/bench/benches/ablations.rs`): each disables one
/// ingredient DESIGN.md calls out, so its contribution can be measured.
#[derive(Clone)]
pub struct Options {
    /// Run the array short-circuiting optimization.
    pub short_circuit: bool,
    /// Assumptions about the program's size parameters (e.g. `n = q·b+1`,
    /// `q ≥ 2`), used by the static non-overlap test.
    pub env: Env,
    /// Hoist allocations (§V property 2). Disabling defeats candidates
    /// whose destination memory is allocated after the fresh definition.
    pub hoist: bool,
    /// Let safe kernel mapnests construct rows directly in their result
    /// memory (§V-A(e)). Disabling keeps the per-instance private-row
    /// copy even where it is provably unnecessary.
    pub mapnest_in_place: bool,
    /// **Test-only mutation hook.** Approve short-circuit candidates past
    /// a failing write check, producing deliberately illegal elisions;
    /// the checked VM's sanitizer must catch them (see
    /// [`short_circuit::short_circuit_force_unsafe`]).
    pub force_unsafe_short_circuit: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            short_circuit: false,
            env: Env::default(),
            hoist: true,
            mapnest_in_place: true,
            force_unsafe_short_circuit: false,
        }
    }
}

impl Options {
    /// The standard optimized configuration: short-circuiting on, with
    /// every supporting ingredient (hoisting, in-place mapnests) at its
    /// default. `Options::default()` is the unoptimized baseline.
    pub fn optimized() -> Options {
        Options {
            short_circuit: true,
            ..Options::default()
        }
    }

    /// This configuration with the given size-assumption environment.
    pub fn with_env(self, env: Env) -> Options {
        Options { env, ..self }
    }
}

/// The result of compilation.
pub struct Compiled {
    pub program: Program,
    pub report: Report,
}

/// Run the full memory pipeline over a (memory-free) source program.
pub fn compile(prog: &Program, opts: &Options) -> Result<Compiled, String> {
    arraymem_ir::validate::validate(prog)?;
    let mut p = prog.clone();
    introduce::introduce_memory(&mut p)?;
    if opts.hoist {
        hoist::hoist_allocations(&mut p);
    }
    let report = if opts.short_circuit && opts.force_unsafe_short_circuit {
        short_circuit::short_circuit_force_unsafe(&mut p, &opts.env, opts.mapnest_in_place)
    } else if opts.short_circuit {
        short_circuit::short_circuit_with(&mut p, &opts.env, opts.mapnest_in_place)
    } else {
        Report::default()
    };
    cleanup::remove_dead_allocs(&mut p);
    Ok(Compiled { program: p, report })
}

#[cfg(test)]
mod tests;
