//! Memory introduction (paper §IV-C).
//!
//! Statements creating fresh arrays get a preceding `alloc` and a
//! row-major index function; change-of-layout transforms reuse the source
//! block with a transformed index function; `if`/`loop` results get
//! existential memory via anti-unification of the branch index functions,
//! with normalization copies inserted when anti-unification fails.

use crate::antiunify::{anti_unify, Existential};
use crate::memtable::param_block_sym;
use crate::remark::{Remark, RemarkKind};
use arraymem_ir::{
    Block, ElemType, Exp, MapBody, MemBinding, PatElem, Program, ScalarExp, Stm, Type, Var,
};
use arraymem_lmad::IndexFn;
use arraymem_symbolic::{Poly, Sym};
use std::collections::HashMap;

type Bindings = HashMap<Var, MemBinding>;

/// Run memory introduction over the whole program (in place).
pub fn introduce_memory(prog: &mut Program) -> Result<(), String> {
    introduce_memory_with(prog, &mut Vec::new())
}

/// As [`introduce_memory`], recording a [`Remark`] for every normalization
/// copy the anti-unification fallbacks insert (§IV-C).
pub fn introduce_memory_with(prog: &mut Program, remarks: &mut Vec<Remark>) -> Result<(), String> {
    let mut tbl: Bindings = HashMap::new();
    for (v, ty) in &prog.params {
        if ty.is_array() {
            tbl.insert(
                *v,
                MemBinding {
                    block: param_block_sym(*v),
                    ixfn: IndexFn::row_major(ty.shape()),
                },
            );
        }
    }
    let body = std::mem::take(&mut prog.body);
    prog.body = introduce_block(body, &mut tbl, remarks)?;
    Ok(())
}

fn introduce_block(
    block: Block,
    tbl: &mut Bindings,
    remarks: &mut Vec<Remark>,
) -> Result<Block, String> {
    let mut out: Vec<Stm> = Vec::with_capacity(block.stms.len());
    for stm in block.stms {
        introduce_stm(stm, tbl, &mut out, remarks)?;
    }
    Ok(Block {
        stms: out,
        result: block.result,
    })
}

fn alloc_stm(elem: ElemType, size: Poly, prefix: &str) -> (Stm, Var) {
    let m = Sym::fresh(&format!("{prefix}_mem"));
    (
        Stm {
            pat: vec![PatElem::new(m, Type::Mem)],
            exp: Exp::Alloc { elem, size },
        },
        m,
    )
}

fn introduce_stm(
    mut stm: Stm,
    tbl: &mut Bindings,
    out: &mut Vec<Stm>,
    remarks: &mut Vec<Remark>,
) -> Result<(), String> {
    match &mut stm.exp {
        // Fresh-array creators: allocate and lay out row-major.
        Exp::Iota(_)
        | Exp::Scratch { .. }
        | Exp::Replicate { .. }
        | Exp::Copy(_)
        | Exp::Concat { .. }
        | Exp::Gather { .. }
        | Exp::Map(_) => {
            if let Exp::Map(m) = &mut stm.exp {
                if let MapBody::Lambda { body, .. } = &mut m.body {
                    let inner = std::mem::take(body);
                    *body = introduce_block(inner, tbl, remarks)?;
                }
            }
            for pe in &mut stm.pat {
                if !pe.ty.is_array() {
                    continue;
                }
                let elem = pe.ty.elem().unwrap();
                let (astm, m) = alloc_stm(elem, pe.ty.num_elems(), &format!("{}", pe.var));
                out.push(astm);
                let mb = MemBinding {
                    block: m,
                    ixfn: IndexFn::row_major(pe.ty.shape()),
                };
                tbl.insert(pe.var, mb.clone());
                pe.mem = Some(mb);
            }
            out.push(stm);
            Ok(())
        }
        Exp::Transform { src, tr } => {
            let src_mb = tbl
                .get(src)
                .ok_or_else(|| format!("transform of unbound array {src}"))?
                .clone();
            let ixfn = src_mb
                .ixfn
                .transform(tr)
                .ok_or_else(|| format!("unsupported transform on {src}"))?;
            let mb = MemBinding {
                block: src_mb.block,
                ixfn,
            };
            tbl.insert(stm.pat[0].var, mb.clone());
            stm.pat[0].mem = Some(mb);
            out.push(stm);
            Ok(())
        }
        Exp::Update { dst, .. } => {
            let mb = tbl
                .get(dst)
                .ok_or_else(|| format!("update of unbound array {dst}"))?
                .clone();
            tbl.insert(stm.pat[0].var, mb.clone());
            stm.pat[0].mem = Some(mb);
            out.push(stm);
            Ok(())
        }
        Exp::Scalar(_) | Exp::Alloc { .. } => {
            out.push(stm);
            Ok(())
        }
        Exp::If { .. } => introduce_if(stm, tbl, out, remarks),
        Exp::Loop { .. } => introduce_loop(stm, tbl, out, remarks),
    }
}

/// Append a normalization copy of `v` (row-major, fresh block) to `block`,
/// replacing result position `pos`. Used when anti-unification fails.
fn normalize_result(block: &mut Block, pos: usize, ty: &Type, tbl: &mut Bindings) {
    let v = block.result[pos];
    let elem = ty.elem().unwrap();
    let (astm, m) = alloc_stm(elem, ty.num_elems(), "norm");
    block.stms.push(astm);
    let copy_var = Sym::fresh("normcopy");
    let mb = MemBinding {
        block: m,
        ixfn: IndexFn::row_major(ty.shape()),
    };
    tbl.insert(copy_var, mb.clone());
    block.stms.push(Stm {
        pat: vec![PatElem {
            var: copy_var,
            ty: ty.clone(),
            mem: Some(mb),
        }],
        exp: Exp::Copy(v),
    });
    block.result[pos] = copy_var;
}

/// Bind the existential scalar values at the end of a block, returning the
/// bound variable names (appended to the block's statements).
fn bind_existential_values(block: &mut Block, values: &[Poly]) -> Vec<Var> {
    values
        .iter()
        .map(|p| {
            let v = Sym::fresh("extv");
            block.stms.push(Stm {
                pat: vec![PatElem::new(v, Type::Scalar(ElemType::I64))],
                exp: Exp::Scalar(ScalarExp::Size(p.clone())),
            });
            v
        })
        .collect()
}

fn introduce_if(
    mut stm: Stm,
    tbl: &mut Bindings,
    out: &mut Vec<Stm>,
    remarks: &mut Vec<Remark>,
) -> Result<(), String> {
    let Exp::If {
        cond,
        then_b,
        else_b,
    } = std::mem::replace(&mut stm.exp, Exp::Iota(Poly::zero()))
    else {
        unreachable!()
    };
    let mut then_b = introduce_block(then_b, tbl, remarks)?;
    let mut else_b = introduce_block(else_b, tbl, remarks)?;

    // For each array result: anti-unify the branch index functions.
    let mut new_pat: Vec<PatElem> = Vec::new();
    let mut then_extra: Vec<Var> = Vec::new();
    let mut else_extra: Vec<Var> = Vec::new();
    for (i, pe) in stm.pat.iter_mut().enumerate() {
        if !pe.ty.is_array() {
            continue;
        }
        let get = |tbl: &Bindings, v: Var| -> MemBinding {
            tbl.get(&v).cloned().unwrap_or_else(|| MemBinding {
                block: param_block_sym(v),
                ixfn: IndexFn::row_major(pe.ty.shape()),
            })
        };
        let mut tmb = get(tbl, then_b.result[i]);
        let mut emb = get(tbl, else_b.result[i]);
        let mut unified = anti_unify(&tmb.ixfn, &emb.ixfn);
        if unified.is_none() {
            // Normalize both branches with copies (paper: "we insert copy
            // statements to normalise the arrays to a uniform
            // representation").
            normalize_result(&mut then_b, i, &pe.ty, tbl);
            normalize_result(&mut else_b, i, &pe.ty, tbl);
            tmb = get(tbl, then_b.result[i]);
            emb = get(tbl, else_b.result[i]);
            unified = anti_unify(&tmb.ixfn, &emb.ixfn);
            remarks.push(Remark {
                pass: "introduce",
                stm: Some(pe.var),
                kind: RemarkKind::NormalizationCopy,
                message: format!(
                    "if-branch layouts of {} did not anti-unify; inserted \
                     normalization copies in both branches",
                    pe.var
                ),
            });
        }
        let (gen, exts) = unified.ok_or("anti-unification failed after normalization")?;
        // Existential memory block variable.
        let mem_var = Sym::fresh("ifmem");
        new_pat.push(PatElem::new(mem_var, Type::Mem));
        then_extra.push(tmb.block);
        else_extra.push(emb.block);
        // Existential scalars.
        let mut gen_sub = gen.clone();
        let mut ext_pat_vars = Vec::new();
        let (lefts, rights): (Vec<Poly>, Vec<Poly>) = exts
            .iter()
            .map(|e: &Existential| (e.left.clone(), e.right.clone()))
            .unzip();
        for e in &exts {
            let pv = Sym::fresh("exts");
            new_pat.push(PatElem::new(pv, Type::Scalar(ElemType::I64)));
            gen_sub = gen_sub.subst(e.var, &Poly::var(pv));
            ext_pat_vars.push(pv);
        }
        then_extra.extend(bind_existential_values(&mut then_b, &lefts));
        else_extra.extend(bind_existential_values(&mut else_b, &rights));
        let mb = MemBinding {
            block: mem_var,
            ixfn: gen_sub,
        };
        tbl.insert(pe.var, mb.clone());
        pe.mem = Some(mb);
    }
    // Prepend the existential results to the branch results and pattern.
    let mut then_res = then_extra;
    then_res.extend(then_b.result);
    then_b.result = then_res;
    let mut else_res = else_extra;
    else_res.extend(else_b.result);
    else_b.result = else_res;
    new_pat.extend(std::mem::take(&mut stm.pat));
    stm.pat = new_pat;
    stm.exp = Exp::If {
        cond,
        then_b,
        else_b,
    };
    out.push(stm);
    Ok(())
}

/// The converged memory plan for one array merge parameter of a loop.
struct LoopPlan {
    /// The parameter's index function (may contain existential variables).
    ixfn_param: IndexFn,
    /// Existentials: variable plus (initializer value, iteration value).
    exts: Vec<Existential>,
    /// The existential memory block merge parameter.
    mem_var: Var,
}

/// Anti-unification fallback for loops: copy the initializers (and body
/// results, if needed) into fresh row-major memory so all iterations agree
/// on the layout.
#[allow(clippy::too_many_arguments)]
fn loop_copy_fallback<F>(
    params: &[PatElem],
    array_positions: &[usize],
    mem_vars: &[Var],
    inits: &mut [Var],
    tbl: &mut Bindings,
    out: &mut Vec<Stm>,
    remarks: &mut Vec<Remark>,
    try_round: &F,
) -> Result<(Block, Vec<LoopPlan>), String>
where
    F: Fn(&[IndexFn], &[Var], &Bindings) -> Result<(Block, Vec<MemBinding>, Vec<Remark>), String>,
{
    normalize_loop(params, array_positions, inits, tbl, out)?;
    for &i in array_positions {
        remarks.push(Remark {
            pass: "introduce",
            stm: Some(params[i].var),
            kind: RemarkKind::NormalizationCopy,
            message: format!(
                "loop layouts of merge parameter {} did not stabilize; \
                 normalized the initializer with a row-major copy",
                params[i].var
            ),
        });
    }
    let norm_ixfns: Vec<IndexFn> = array_positions
        .iter()
        .map(|&i| IndexFn::row_major(params[i].ty.shape()))
        .collect();
    let (mut b3, _res, round_remarks) = try_round(&norm_ixfns, mem_vars, tbl)?;
    remarks.extend(round_remarks);
    for &i in array_positions {
        let mut t2: HashMap<Var, MemBinding> = HashMap::new();
        collect_bindings(&b3, &mut t2);
        let cur = t2
            .get(&b3.result[i])
            .map(|mb| mb.ixfn.clone())
            .unwrap_or_else(|| IndexFn::row_major(params[i].ty.shape()));
        if cur != IndexFn::row_major(params[i].ty.shape()) {
            let mut t3 = tbl.clone();
            normalize_result(&mut b3, i, &params[i].ty, &mut t3);
        }
    }
    let plans = array_positions
        .iter()
        .enumerate()
        .map(|(k, &i)| LoopPlan {
            ixfn_param: IndexFn::row_major(params[i].ty.shape()),
            exts: Vec::new(),
            mem_var: mem_vars[k],
        })
        .collect();
    Ok((b3, plans))
}

fn introduce_loop(
    mut stm: Stm,
    tbl: &mut Bindings,
    out: &mut Vec<Stm>,
    remarks: &mut Vec<Remark>,
) -> Result<(), String> {
    let Exp::Loop {
        mut params,
        mut inits,
        index,
        count,
        body,
    } = std::mem::replace(&mut stm.exp, Exp::Iota(Poly::zero()))
    else {
        unreachable!()
    };

    // Strategy (a pragmatic variant of the paper's treatment, see
    // DESIGN.md): first try the common case where the body returns its
    // merge parameter's layout unchanged (in-place loops); otherwise
    // generalize the disagreeing index-function components into
    // existential scalar merge parameters; if even the generalized form
    // is unstable, normalize with copies.
    let array_positions: Vec<usize> = params
        .iter()
        .enumerate()
        .filter(|(_, pe)| pe.ty.is_array())
        .map(|(i, _)| i)
        .collect();

    // One attempt: introduce memory in a copy of the body under the given
    // param index functions; returns the per-array result bindings. Remarks
    // from the body go into a per-round scratch — only the chosen round's
    // remarks are kept, so discarded rounds don't double-report.
    let try_round = |param_ixfns: &[IndexFn],
                     mem_vars: &[Var],
                     tbl: &Bindings|
     -> Result<(Block, Vec<MemBinding>, Vec<Remark>), String> {
        let mut round_tbl = tbl.clone();
        for (k, &i) in array_positions.iter().enumerate() {
            round_tbl.insert(
                params[i].var,
                MemBinding {
                    block: mem_vars[k],
                    ixfn: param_ixfns[k].clone(),
                },
            );
        }
        let mut round_remarks = Vec::new();
        let b = introduce_block(body.clone(), &mut round_tbl, &mut round_remarks)?;
        let mut res = Vec::new();
        for &i in &array_positions {
            let v = b.result[i];
            res.push(
                round_tbl
                    .get(&v)
                    .cloned()
                    .ok_or_else(|| format!("loop body result {v} has no memory binding"))?,
            );
        }
        Ok((b, res, round_remarks))
    };

    let mem_vars: Vec<Var> = array_positions
        .iter()
        .map(|_| Sym::fresh("loopmem"))
        .collect();
    let init_ixfns: Vec<IndexFn> = array_positions
        .iter()
        .map(|&i| {
            tbl.get(&inits[i])
                .map(|mb| mb.ixfn.clone())
                .unwrap_or_else(|| IndexFn::row_major(params[i].ty.shape()))
        })
        .collect();

    // Round 1: assume layouts are loop-invariant.
    let (b1, res1, rem1) = try_round(&init_ixfns, &mem_vars, tbl)?;
    let stable1 = res1.iter().zip(&init_ixfns).all(|(mb, ix)| &mb.ixfn == ix);

    let (mut body, plans): (Block, Vec<LoopPlan>) = if stable1 {
        let plans = array_positions
            .iter()
            .enumerate()
            .map(|(k, _)| LoopPlan {
                ixfn_param: init_ixfns[k].clone(),
                exts: Vec::new(),
                mem_var: mem_vars[k],
            })
            .collect();
        remarks.extend(rem1);
        (b1, plans)
    } else {
        // Round 2: generalize disagreeing components into existentials and
        // verify the generalized form is a fixed point (the body result's
        // components must be expressible at the ext positions).
        let mut gens: Vec<IndexFn> = Vec::new();
        let mut ext_sets: Vec<Vec<Existential>> = Vec::new();
        let mut ok = true;
        for (k, _) in array_positions.iter().enumerate() {
            match anti_unify(&init_ixfns[k], &res1[k].ixfn) {
                Some((gen, exts)) => {
                    gens.push(gen);
                    ext_sets.push(exts);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            let (b2, res2, rem2) = try_round(&gens, &mem_vars, tbl)?;
            // Check fixpoint: each result component must equal the
            // generalized one, or be a pure renaming at ext positions.
            let mut plans = Vec::new();
            'outer: for (k, _) in array_positions.iter().enumerate() {
                match anti_unify(&gens[k], &res2[k].ixfn) {
                    Some((_g2, exts2)) => {
                        // Every disagreement must sit at an ext var of gen.
                        let prior: Vec<Sym> = ext_sets[k].iter().map(|e| e.var).collect();
                        let mut body_vals: HashMap<Sym, Poly> = HashMap::new();
                        for e2 in &exts2 {
                            match e2.left.as_var() {
                                Some(v) if prior.contains(&v) => {
                                    body_vals.insert(v, e2.right.clone());
                                }
                                _ => {
                                    ok = false;
                                    break 'outer;
                                }
                            }
                        }
                        let exts = ext_sets[k]
                            .iter()
                            .map(|e| Existential {
                                var: e.var,
                                left: e.left.clone(),
                                right: body_vals
                                    .get(&e.var)
                                    .cloned()
                                    .unwrap_or_else(|| Poly::var(e.var)),
                            })
                            .collect();
                        plans.push(LoopPlan {
                            ixfn_param: gens[k].clone(),
                            exts,
                            mem_var: mem_vars[k],
                        });
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                remarks.extend(rem2);
                (b2, plans)
            } else {
                loop_copy_fallback(
                    &params,
                    &array_positions,
                    &mem_vars,
                    &mut inits,
                    tbl,
                    out,
                    remarks,
                    &try_round,
                )?
            }
        } else {
            loop_copy_fallback(
                &params,
                &array_positions,
                &mem_vars,
                &mut inits,
                tbl,
                out,
                remarks,
                &try_round,
            )?
        }
    };

    // Wire the extended params/inits/results.
    // Per-array group layout: [mem param, existential scalar params...],
    // all groups before the original params.
    let mut new_params: Vec<PatElem> = Vec::new();
    let mut new_inits: Vec<Var> = Vec::new();
    let mut body_extra: Vec<Var> = Vec::new();
    let mut pre_stms: Vec<Stm> = Vec::new();
    let mut pat_extra: Vec<PatElem> = Vec::new();
    let mut body_bindings: HashMap<Var, MemBinding> = HashMap::new();
    collect_bindings(&body, &mut body_bindings);
    for (k, &i) in array_positions.iter().enumerate() {
        let plan = &plans[k];
        new_params.push(PatElem::new(plan.mem_var, Type::Mem));
        let init_mb = tbl
            .get(&inits[i])
            .cloned()
            .ok_or_else(|| format!("loop initializer {} has no memory binding", inits[i]))?;
        new_inits.push(init_mb.block);
        let res_block = body_bindings
            .get(&body.result[i])
            .map(|mb| mb.block)
            .unwrap_or(plan.mem_var);
        body_extra.push(res_block);
        let out_mem = Sym::fresh("loopmem_out");
        pat_extra.push(PatElem::new(out_mem, Type::Mem));

        let mut gen_out = plan.ixfn_param.clone();
        for e in &plan.exts {
            // Scalar merge parameter carrying the existential.
            new_params.push(PatElem::new(e.var, Type::Scalar(ElemType::I64)));
            // Initial value bound before the loop.
            let v = Sym::fresh("extinit");
            pre_stms.push(Stm {
                pat: vec![PatElem::new(v, Type::Scalar(ElemType::I64))],
                exp: Exp::Scalar(ScalarExp::Size(e.left.clone())),
            });
            new_inits.push(v);
            // Iteration value bound at the end of the body.
            let bv = bind_existential_values(&mut body, std::slice::from_ref(&e.right));
            body_extra.extend(bv);
            // Pattern-level existential out.
            let ov = Sym::fresh("exto");
            pat_extra.push(PatElem::new(ov, Type::Scalar(ElemType::I64)));
            gen_out = gen_out.subst(e.var, &Poly::var(ov));
        }
        let mb = MemBinding {
            block: out_mem,
            ixfn: gen_out,
        };
        tbl.insert(stm.pat[i].var, mb.clone());
        stm.pat[i].mem = Some(mb);
        // Record the merge parameter binding on the parameter itself and
        // in the table, so later passes (and the VM) can see it.
        let pmb = MemBinding {
            block: plan.mem_var,
            ixfn: plan.ixfn_param.clone(),
        };
        tbl.insert(params[i].var, pmb.clone());
        params[i].mem = Some(pmb);
    }

    let mut all_params = new_params;
    all_params.extend(params);
    let mut all_inits = new_inits;
    all_inits.extend(inits);
    let mut res = body_extra;
    res.extend(std::mem::take(&mut body.result));
    body.result = res;
    let mut all_pat = pat_extra;
    all_pat.extend(std::mem::take(&mut stm.pat));
    stm.pat = all_pat;

    out.extend(pre_stms);
    stm.exp = Exp::Loop {
        params: all_params,
        inits: all_inits,
        index,
        count,
        body,
    };
    out.push(stm);
    Ok(())
}

/// Normalize the initializers of array merge parameters with fresh
/// row-major copies (the anti-unification fallback).
fn normalize_loop(
    params: &[PatElem],
    array_positions: &[usize],
    inits: &mut [Var],
    tbl: &mut Bindings,
    out: &mut Vec<Stm>,
) -> Result<(), String> {
    for &i in array_positions {
        let ty = &params[i].ty;
        let (astm, m) = alloc_stm(ty.elem().unwrap(), ty.num_elems(), "loopinit");
        out.push(astm);
        let cv = Sym::fresh("loopinitcopy");
        let mb = MemBinding {
            block: m,
            ixfn: IndexFn::row_major(ty.shape()),
        };
        tbl.insert(cv, mb.clone());
        out.push(Stm {
            pat: vec![PatElem {
                var: cv,
                ty: ty.clone(),
                mem: Some(mb),
            }],
            exp: Exp::Copy(inits[i]),
        });
        inits[i] = cv;
    }
    Ok(())
}

/// Collect pattern memory bindings of a block (shallow + nested).
pub fn collect_bindings(block: &Block, out: &mut HashMap<Var, MemBinding>) {
    for stm in &block.stms {
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                out.insert(pe.var, mb.clone());
            }
        }
        match &stm.exp {
            Exp::If { then_b, else_b, .. } => {
                collect_bindings(then_b, out);
                collect_bindings(else_b, out);
            }
            Exp::Loop { params, body, .. } => {
                for pe in params {
                    if let Some(mb) = &pe.mem {
                        out.insert(pe.var, mb.clone());
                    }
                }
                collect_bindings(body, out);
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &m.body {
                    collect_bindings(body, out);
                }
            }
            _ => {}
        }
    }
}
