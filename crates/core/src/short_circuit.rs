//! Array short-circuiting (paper §V).
//!
//! A *circuit point* is `let xss[W] = bs` (update) or
//! `let xss = concat ... bs ...` where `bs` is lastly used. The bottom-up
//! analysis tries to construct `bs` — and every array in an alias relation
//! with it — directly inside `xss`'s memory with the rebased index
//! function, eliding the copy.
//!
//! Per candidate the pass maintains two summaries (§V-B):
//!
//! - `uses_dst` (`U_xss`): all uses of the destination memory between the
//!   circuit point (exclusive) and the current statement, walking upward;
//! - `writes_bs` (`W_bs`): memory written via the rebased alias web.
//!
//! Every write through the web must be provably disjoint from `uses_dst`
//! (the static non-overlap test of §V-C). The analysis finishes when it
//! reaches the web's *fresh* definition; the four safety properties of §V
//! are checked along the way:
//!
//! 1. `bs` lastly used at the circuit point (last-use analysis);
//! 2. `xss`'s memory allocated before the fresh definition (enabled by
//!    allocation hoisting);
//! 3. valid rebased index functions for the whole alias web, translated
//!    into scope (symbol-table fixpoint substitution);
//! 4. no write through the web overlaps a use of `xss`'s memory.
//!
//! Mapnests construct their per-iteration rows directly in the result
//! memory when safe (§V-A(e)); this is decided by a post-pass over the
//! final bindings and surfaces as `MapExp::in_place_result`.

use crate::remark::RejectReason;
use arraymem_ir::alias::{aliases, AliasMap};
use arraymem_ir::lastuse::used_after;
use arraymem_ir::{
    Block, Exp, MapBody, MemBinding, Program, ScalarExp, SliceSpec, Stm, UpdateSrc, Var,
};
use arraymem_lmad::aggregate::Summary;
use arraymem_lmad::overlap::non_overlap;
use arraymem_lmad::{IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Env, Poly, Sym};
use std::collections::{HashMap, HashSet};

/// What kind of circuit point a candidate came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateKind {
    Update,
    Concat,
}

/// A structured rejection: the machine-readable identity of the legality
/// check that failed, plus the human-readable detail. Every path that
/// conservatively rejects a candidate constructs one of these — there is
/// no way to fail a candidate without naming the check.
#[derive(Clone, Debug)]
pub struct Rejection {
    pub kind: RejectReason,
    pub message: String,
}

impl Rejection {
    fn new(kind: RejectReason, message: impl Into<String>) -> Rejection {
        Rejection {
            kind,
            message: message.into(),
        }
    }
}

/// The outcome of one short-circuiting candidate, for reporting.
#[derive(Clone, Debug)]
pub struct CandidateOutcome {
    /// Printable name of the array the candidate tried to short-circuit.
    pub root: String,
    pub kind: CandidateKind,
    pub succeeded: bool,
    /// The variable bound by the circuit-point statement, anchoring the
    /// outcome (and its remark) to a statement of the program.
    pub stm: Var,
    /// "ok" or the reason the analysis failed (conservatively).
    pub reason: String,
    /// For rejected candidates: which legality check failed.
    pub rejection: Option<RejectReason>,
    /// For successful candidates whose summaries stayed finite: the
    /// symbolic footprints behind the non-overlap verdict, for the checked
    /// VM to re-verify against concrete sizes at runtime.
    pub check: Option<CircuitCheck>,
}

/// The evidence behind one successful short-circuit: the write footprint
/// of the rebased web (`W_bs`) and the recorded later uses of the
/// destination memory (`U_xss`), both symbolic. The checked VM evaluates
/// every pair under the run's concrete sizes and asserts disjointness —
/// a dynamic cross-check of the static test of §V-C.
#[derive(Clone, Debug)]
pub struct CircuitCheck {
    /// Root array of the short-circuited web.
    pub root: String,
    /// Name bound by the circuit-point statement.
    pub stm: String,
    /// Destination memory block variable.
    pub dst_block: Var,
    /// `W_bs`: everything the rebased web writes.
    pub writes: Vec<Lmad>,
    /// `U_xss`: uses of the destination memory after the fresh definition.
    pub uses: Vec<Lmad>,
}

/// Aggregate report of a short-circuiting run. The merge pass appends its
/// own records here, so one report carries every runtime obligation the
/// optimizer took on ([`Report::checks`] and [`Report::merges`]).
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub candidates: Vec<CandidateOutcome>,
    /// Blocks the merge pass folded together
    /// ([`crate::merge::merge_blocks`]); footprint-justified records carry
    /// the pairs checked mode re-proves at runtime.
    pub merges: Vec<crate::merge::MergeRecord>,
    /// Number of kernel maps whose rows are constructed in place.
    pub in_place_maps: usize,
    /// The result variables of those maps, anchoring the remarks.
    pub in_place_stms: Vec<Var>,
    /// Per-mapnest parallel-safety verdicts recorded by the `par_safety`
    /// stage ([`crate::par_safety`]) — like [`Report::merges`], these are
    /// runtime obligations lowering threads into the execution plan.
    pub par_safety: Vec<crate::par_safety::ParSafetyRecord>,
}

impl Report {
    pub fn successes(&self) -> usize {
        self.candidates.iter().filter(|c| c.succeeded).count()
    }

    pub fn failures(&self) -> usize {
        self.candidates.len() - self.successes()
    }

    /// Runtime cross-checks recorded by successful candidates.
    pub fn checks(&self) -> impl Iterator<Item = &CircuitCheck> {
        self.candidates.iter().filter_map(|c| c.check.as_ref())
    }
}

/// Where to apply an elision once a candidate succeeds.
#[derive(Clone, Debug)]
enum CircuitAction {
    /// Mark `Update` at this statement path as elided.
    ElideUpdate,
    /// Mark concat argument `k` as elided.
    ElideConcatArg(usize),
}

struct Candidate {
    kind: CandidateKind,
    root: Var,
    /// The destination memory block (`xss_mem`).
    dst_block: Var,
    /// The rebased alias web: var → new binding.
    rebased: HashMap<Var, MemBinding>,
    uses_dst: Summary,
    writes_bs: Summary,
    /// Statement index (in the analyzed block) of the circuit point.
    circuit_at: usize,
    action: CircuitAction,
    failed: Option<Rejection>,
    finished: bool,
    /// Statement index of the fresh definition, once found.
    finished_at: Option<usize>,
    /// Set when the force-unsafe hook skipped a failing write check.
    forced: bool,
}

impl Candidate {
    fn fail(&mut self, kind: RejectReason, reason: impl Into<String>) {
        self.fail_with(Rejection::new(kind, reason));
    }

    fn fail_with(&mut self, rejection: Rejection) {
        if self.failed.is_none() {
            self.failed = Some(rejection);
        }
    }

    fn active(&self) -> bool {
        self.failed.is_none() && !self.finished
    }
}

/// Shared pass context.
struct Ctx {
    am: AliasMap,
    /// Global (pre-pass) bindings of every array var.
    bindings: HashMap<Var, MemBinding>,
    /// Optimistic overlay: rebasings from candidates that have *finished*
    /// successfully during this run.
    overlay: HashMap<Var, MemBinding>,
    /// Elisions to apply: (block-id, stm idx, action).
    report: Report,
    /// Test-only mutation hook: approve candidates past a failing write
    /// check, producing deliberately illegal elisions for the checked VM's
    /// sanitizer to catch.
    force_unsafe: bool,
}

impl Ctx {
    fn binding(&self, v: Var) -> Option<MemBinding> {
        self.overlay
            .get(&v)
            .or_else(|| self.bindings.get(&v))
            .cloned()
    }
}

/// Run the short-circuiting pass over a memory-annotated program.
pub fn short_circuit(prog: &mut Program, env: &Env) -> Report {
    short_circuit_with(prog, env, true)
}

/// As [`short_circuit`], with the mapnest in-place post-pass switchable
/// (for ablations).
pub fn short_circuit_with(prog: &mut Program, env: &Env, mapnest_in_place: bool) -> Report {
    drive(prog, env, mapnest_in_place, false)
}

/// **Test-only mutation hook.** As [`short_circuit_with`], but a write
/// check that fails the non-overlap test does *not* fail the candidate:
/// the resulting program contains a deliberately illegal elision, and the
/// checked VM's sanitizer must catch it (mutation-style self-test).
pub fn short_circuit_force_unsafe(prog: &mut Program, env: &Env, mapnest_in_place: bool) -> Report {
    drive(prog, env, mapnest_in_place, true)
}

fn drive(prog: &mut Program, env: &Env, mapnest_in_place: bool, force_unsafe: bool) -> Report {
    let am = aliases(prog);
    let mut bindings = HashMap::new();
    crate::introduce::collect_bindings(&prog.body, &mut bindings);
    for (v, ty) in &prog.params {
        if ty.is_array() {
            bindings.insert(
                *v,
                MemBinding {
                    block: crate::memtable::param_block_sym(*v),
                    ixfn: IndexFn::row_major(ty.shape()),
                },
            );
        }
    }
    let mut ctx = Ctx {
        am,
        bindings,
        overlay: HashMap::new(),
        report: Report::default(),
        force_unsafe,
    };
    // Arrays escaping as program results can still be destinations; nothing
    // special is needed in live_after beyond the result classes (handled by
    // used_after).
    let live_after: HashSet<Var> = HashSet::new();
    // Memory allocated "outside" the body: parameter blocks.
    let outer_allocs: HashSet<Var> = prog
        .params
        .iter()
        .filter(|(_, ty)| ty.is_array())
        .map(|(v, _)| crate::memtable::param_block_sym(*v))
        .collect();
    let mut body = std::mem::take(&mut prog.body);
    run_block(&mut body, &live_after, env, &outer_allocs, &mut ctx);
    // Post-pass: decide which kernel maps build their rows in place.
    if mapnest_in_place {
        mark_in_place_maps(&mut body, env, &mut ctx);
    }
    prog.body = body;
    ctx.report
}

/// Analyze nested blocks first (post-order), then this block's own
/// statements.
fn run_block(
    block: &mut Block,
    live_after: &HashSet<Var>,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    ctx: &mut Ctx,
) {
    let n = block.stms.len();
    for k in 0..n {
        // Liveness for the nested block: classes used after stm k, plus the
        // enclosing live set.
        let mut nested_live = live_after.clone();
        for s in &block.stms[k + 1..] {
            for v in s.exp.free_vars() {
                nested_live.insert(ctx.am.root(v));
            }
        }
        for v in &block.result {
            nested_live.insert(ctx.am.root(*v));
        }
        // Allocations visible inside the nested block: everything allocated
        // in this block before k, plus outer.
        let mut allocs = outer_allocs.clone();
        for s in &block.stms[..k] {
            if matches!(s.exp, Exp::Alloc { .. }) {
                allocs.insert(s.pat[0].var);
            }
        }
        match &mut block.stms[k].exp {
            Exp::If { then_b, else_b, .. } => {
                run_block(then_b, &nested_live, env, &allocs, ctx);
                run_block(else_b, &nested_live, env, &allocs, ctx);
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
                ..
            } => {
                // Merge-parameter classes stay live across iterations, and
                // memory merge parameters are backed by allocations made
                // before the loop.
                for pe in params.iter() {
                    nested_live.insert(ctx.am.root(pe.var));
                    if pe.ty == arraymem_ir::Type::Mem {
                        allocs.insert(pe.var);
                    }
                }
                let mut env2 = env.clone();
                env2.assume_ge(*index, 0);
                env2.assume_le(*index, count.clone() - Poly::constant(1));
                run_block(body, &nested_live, &env2, &allocs, ctx);
            }
            _ => {}
        }
    }
    analyze_stms(block, live_after, env, outer_allocs, ctx);
}

/// Convert a slice spec into a layout transform (for computing access
/// regions and rebased index functions).
fn slice_transform(slice: &SliceSpec) -> Option<Transform> {
    match slice {
        SliceSpec::Triplet(ts) => Some(Transform::Slice(ts.clone())),
        SliceSpec::Lmad(l) => Some(Transform::LmadSlice(l.clone())),
        SliceSpec::Point(es) => {
            let ts = es
                .iter()
                .map(|e| scalar_to_poly(e).map(TripletSlice::Fix))
                .collect::<Option<Vec<_>>>()?;
            Some(Transform::Slice(ts))
        }
        // A scatter's written positions are runtime data: no static
        // transform describes them (see `arraymem_lmad::OpaqueIxFn`).
        SliceSpec::Scatter(_) => None,
    }
}

/// Conservative conversion of a scalar expression into a polynomial.
fn scalar_to_poly(e: &ScalarExp) -> Option<Poly> {
    use arraymem_ir::BinOp;
    match e {
        ScalarExp::Const(arraymem_ir::Constant::I64(c)) => Some(Poly::constant(*c)),
        ScalarExp::Var(v) => Some(Poly::var(*v)),
        ScalarExp::Size(p) => Some(p.clone()),
        ScalarExp::Bin(op, a, b) => {
            let (a, b) = (scalar_to_poly(a)?, scalar_to_poly(b)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The abstract set of memory locations addressed by an index function
/// (footnote 26: multi-LMAD compositions are over-approximated to Top).
pub(crate) fn ixfn_set(ixfn: &IndexFn) -> Summary {
    match ixfn.as_single() {
        Some(l) => {
            let mut s = Summary::empty();
            s.add(l.clone());
            s
        }
        None => Summary::top(),
    }
}

/// The memory region written when `slice` of an array with index function
/// `ixfn` is updated.
fn slice_region(ixfn: &IndexFn, slice: &SliceSpec) -> Summary {
    match slice_transform(slice).and_then(|tr| ixfn.transform(&tr)) {
        Some(f) => ixfn_set(&f),
        None => Summary::top(),
    }
}

/// Main backward walk over one block's statements.
fn analyze_stms(
    block: &mut Block,
    live_after: &HashSet<Var>,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    ctx: &mut Ctx,
) {
    // Positions of allocs and scalar definitions for translation/property 2.
    let mut alloc_pos: HashMap<Var, usize> = HashMap::new();
    let mut def_pos: HashMap<Var, usize> = HashMap::new();
    let mut scalar_defs: HashMap<Var, Poly> = HashMap::new();
    for (k, stm) in block.stms.iter().enumerate() {
        for pe in &stm.pat {
            def_pos.insert(pe.var, k);
        }
        match &stm.exp {
            Exp::Alloc { .. } => {
                alloc_pos.insert(stm.pat[0].var, k);
            }
            Exp::Scalar(se) => {
                if let Some(p) = scalar_to_poly(se) {
                    scalar_defs.insert(stm.pat[0].var, p);
                }
            }
            _ => {}
        }
    }

    let mut cands: Vec<Candidate> = Vec::new();
    for k in (0..block.stms.len()).rev() {
        // 1. Process this statement against every active candidate.
        for ci in 0..cands.len() {
            if !cands[ci].active() || k >= cands[ci].circuit_at {
                continue;
            }
            let mut cand = std::mem::replace(
                &mut cands[ci],
                Candidate {
                    kind: CandidateKind::Update,
                    root: Sym::fresh("hole"),
                    dst_block: Sym::fresh("hole"),
                    rebased: HashMap::new(),
                    uses_dst: Summary::empty(),
                    writes_bs: Summary::empty(),
                    circuit_at: 0,
                    action: CircuitAction::ElideUpdate,
                    failed: None,
                    finished: true,
                    finished_at: None,
                    forced: false,
                },
            );
            process_stm(
                &mut cand,
                block,
                k,
                env,
                outer_allocs,
                &alloc_pos,
                &def_pos,
                &scalar_defs,
                ctx,
            );
            // Publish a successful finish immediately so transitive
            // chaining (Fig. 6a) sees the rebased destination.
            if cand.finished && cand.failed.is_none() {
                // This rebase vacates the blocks its web vars lived in.
                // Any other candidate whose *destination* is one of those
                // blocks baked index functions (and footprint summaries)
                // for cells that no longer back the destination arrays:
                // its elision would write into dead memory. Failing it
                // merely keeps the copy, which is always sound.
                let vacated: HashSet<Var> = cand
                    .rebased
                    .iter()
                    .filter_map(|(v, mb)| {
                        ctx.binding(*v)
                            .and_then(|old| (old.block != mb.block).then_some(old.block))
                    })
                    .collect();
                for (cj, other) in cands.iter_mut().enumerate() {
                    if cj == ci || other.failed.is_some() {
                        continue;
                    }
                    if vacated.contains(&other.dst_block) {
                        for v in other.rebased.keys() {
                            ctx.overlay.remove(v);
                        }
                        other.fail(
                            RejectReason::DestinationVacated,
                            "destination memory was itself short-circuited away",
                        );
                    }
                }
                for (v, mb) in &cand.rebased {
                    ctx.overlay.insert(*v, mb.clone());
                }
            }
            cands[ci] = cand;
        }
        // 2. Maybe create new candidates at this statement.
        create_candidates(block, k, live_after, &mut cands, ctx);
    }

    // Apply successful candidates.
    for cand in cands {
        let succeeded = cand.finished && cand.failed.is_none();
        let (reason, rejection) = if !succeeded {
            match &cand.failed {
                Some(r) => (r.message.clone(), Some(r.kind)),
                None => (
                    "fresh definition not found in scope".to_string(),
                    Some(RejectReason::FreshDefNotFound),
                ),
            }
        } else if cand.forced {
            ("ok (forced past a failing write check)".to_string(), None)
        } else {
            ("ok".to_string(), None)
        };
        // Record the concrete evidence for the checked VM: both summaries
        // must have stayed finite sets for the footprints to be checkable.
        let check = if succeeded {
            match (cand.writes_bs.lmads(), cand.uses_dst.lmads()) {
                (Some(w), Some(u)) => Some(CircuitCheck {
                    root: format!("{}", cand.root),
                    stm: format!("{}", block.stms[cand.circuit_at].pat[0].var),
                    dst_block: cand.dst_block,
                    writes: w.to_vec(),
                    uses: u.to_vec(),
                }),
                _ => None,
            }
        } else {
            None
        };
        ctx.report.candidates.push(CandidateOutcome {
            root: format!("{}", cand.root),
            kind: cand.kind,
            succeeded,
            stm: block.stms[cand.circuit_at].pat[0].var,
            reason,
            rejection,
            check,
        });
        if !succeeded {
            continue;
        }
        // Rebase the web's definitions.
        apply_rebase(block, &cand.rebased);
        for (v, mb) in &cand.rebased {
            ctx.overlay.insert(*v, mb.clone());
        }
        // Elide the circuit point.
        match cand.action {
            CircuitAction::ElideUpdate => {
                if let Exp::Update { elided, .. } = &mut block.stms[cand.circuit_at].exp {
                    *elided = true;
                }
            }
            CircuitAction::ElideConcatArg(a) => {
                if let Exp::Concat { elided, .. } = &mut block.stms[cand.circuit_at].exp {
                    elided[a] = true;
                }
            }
        }
    }
}

/// Create candidates for the circuit points in statement `k`.
fn create_candidates(
    block: &Block,
    k: usize,
    live_after: &HashSet<Var>,
    cands: &mut Vec<Candidate>,
    ctx: &Ctx,
) {
    let stm = &block.stms[k];
    match &stm.exp {
        Exp::Update {
            dst,
            slice,
            src: UpdateSrc::Array(src),
            elided: false,
        } => {
            let mut cand_or_fail =
                |reason: Option<Rejection>, rebased: HashMap<Var, MemBinding>, dst_block: Var| {
                    cands.push(Candidate {
                        kind: CandidateKind::Update,
                        root: *src,
                        dst_block,
                        rebased,
                        uses_dst: Summary::empty(),
                        writes_bs: Summary::empty(),
                        circuit_at: k,
                        action: CircuitAction::ElideUpdate,
                        failed: reason,
                        finished: false,
                        finished_at: None,
                        forced: false,
                    });
                };
            if let SliceSpec::Scatter(_) = slice {
                // Runtime-indexed write: the written positions are data, so
                // no affine rebased index function exists for the source.
                // Recorded as a rejection (not skipped silently) so remarks
                // prove the pass saw — and gave up on — the scatter.
                let dst_block = ctx
                    .binding(*dst)
                    .map(|mb| mb.block)
                    .unwrap_or_else(|| Sym::fresh("none"));
                cand_or_fail(
                    Some(Rejection::new(
                        RejectReason::RuntimeIndexedWrite,
                        "scatter writes through runtime indices: the copy is \
                         kept and bounds are enforced dynamically",
                    )),
                    HashMap::new(),
                    dst_block,
                );
                return;
            }
            if ctx.am.same_class(*src, *dst) {
                return; // not a circuit point: src aliases dst
            }
            if used_after(block, k, *src, live_after, &ctx.am) {
                cand_or_fail(
                    Some(Rejection::new(
                        RejectReason::NotLastUse,
                        "source used after the circuit point",
                    )),
                    HashMap::new(),
                    Sym::fresh("none"),
                );
                return;
            }
            let Some(dst_mb) = ctx.binding(*dst) else {
                return;
            };
            let Some(tr) = slice_transform(slice) else {
                cand_or_fail(
                    Some(Rejection::new(
                        RejectReason::SliceNotExpressible,
                        "slice not expressible as a transform",
                    )),
                    HashMap::new(),
                    dst_mb.block,
                );
                return;
            };
            let Some(new_ixfn) = dst_mb.ixfn.transform(&tr) else {
                cand_or_fail(
                    Some(Rejection::new(
                        RejectReason::SliceNotExpressible,
                        "could not slice the destination index function",
                    )),
                    HashMap::new(),
                    dst_mb.block,
                );
                return;
            };
            let mut rebased = HashMap::new();
            rebased.insert(
                *src,
                MemBinding {
                    block: dst_mb.block,
                    ixfn: new_ixfn,
                },
            );
            cand_or_fail(None, rebased, dst_mb.block);
        }
        Exp::Concat { args, elided } => {
            let res = stm.pat[0].var;
            let Some(res_mb) = ctx.binding(res) else {
                return;
            };
            let res_shape = stm.pat[0].ty.shape().to_vec();
            let mut offset = Poly::zero();
            for (a_idx, &a) in args.iter().enumerate() {
                let a_ty = slice_arg_shape(block, a, ctx);
                let Some(a_shape) = a_ty else {
                    // Without this argument's extent the row offsets of all
                    // later arguments are unknown: abort the remaining
                    // candidates rather than rebase them at wrong offsets.
                    break;
                };
                let len = a_shape[0].clone();
                let this_offset = offset.clone();
                offset = offset + len.clone();
                if elided[a_idx] {
                    continue;
                }
                let mut cand_or_fail =
                    |reason: Option<Rejection>, rebased: HashMap<Var, MemBinding>| {
                        cands.push(Candidate {
                            kind: CandidateKind::Concat,
                            root: a,
                            dst_block: res_mb.block,
                            rebased,
                            uses_dst: Summary::empty(),
                            writes_bs: Summary::empty(),
                            circuit_at: k,
                            action: CircuitAction::ElideConcatArg(a_idx),
                            failed: reason,
                            finished: false,
                            finished_at: None,
                            forced: false,
                        });
                    };
                // The two "not lastly used" shapes are recorded as rejected
                // candidates rather than skipped silently — aliasing args
                // (`concat bs bs`, or two args from one web) were a
                // historical fuzzer bug class: eliding both would rebase
                // the same memory onto two destinations (footnote 17).
                if ctx.am.same_class(a, res) {
                    cand_or_fail(
                        Some(Rejection::new(
                            RejectReason::AliasingConcatArg,
                            "concat argument aliases the concat result",
                        )),
                        HashMap::new(),
                    );
                    continue;
                }
                if args
                    .iter()
                    .enumerate()
                    .any(|(j, &b)| j != a_idx && ctx.am.same_class(a, b))
                {
                    cand_or_fail(
                        Some(Rejection::new(
                            RejectReason::AliasingConcatArg,
                            "concat argument aliases another argument — eliding \
                             both would rebase one alias web onto two \
                             destinations (footnote 17)",
                        )),
                        HashMap::new(),
                    );
                    continue;
                }
                if used_after(block, k, a, live_after, &ctx.am) {
                    cand_or_fail(
                        Some(Rejection::new(
                            RejectReason::NotLastUse,
                            "concat argument used after the circuit point",
                        )),
                        HashMap::new(),
                    );
                    continue;
                }
                // Rebased index function: rows [offset, offset+len) of res.
                let mut ts = vec![TripletSlice::range(this_offset, len, Poly::constant(1))];
                for d in &res_shape[1..] {
                    ts.push(TripletSlice::full(d.clone()));
                }
                let Some(new_ixfn) = res_mb.ixfn.transform(&Transform::Slice(ts)) else {
                    cand_or_fail(
                        Some(Rejection::new(
                            RejectReason::SliceNotExpressible,
                            "could not slice the result index function at the \
                             argument's rows",
                        )),
                        HashMap::new(),
                    );
                    continue;
                };
                let mut rebased = HashMap::new();
                rebased.insert(
                    a,
                    MemBinding {
                        block: res_mb.block,
                        ixfn: new_ixfn,
                    },
                );
                cand_or_fail(None, rebased);
            }
        }
        _ => {}
    }
}

/// Shape of a concat argument (from its binding type where available).
fn slice_arg_shape(block: &Block, v: Var, ctx: &Ctx) -> Option<Vec<Poly>> {
    for stm in &block.stms {
        for pe in &stm.pat {
            if pe.var == v {
                return Some(pe.ty.shape().to_vec());
            }
        }
    }
    // Fall back to the binding's logical shape.
    ctx.binding(v).map(|mb| mb.ixfn.shape())
}

/// Process statement `k` for an active candidate (the heart of the
/// backward analysis).
#[allow(clippy::too_many_arguments)]
fn process_stm(
    cand: &mut Candidate,
    block: &Block,
    k: usize,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    alloc_pos: &HashMap<Var, usize>,
    def_pos: &HashMap<Var, usize>,
    scalar_defs: &HashMap<Var, Poly>,
    ctx: &Ctx,
) {
    let stm = &block.stms[k];
    let defs: Vec<Var> = stm.pat.iter().map(|p| p.var).collect();
    let web_def: Option<Var> = defs.iter().copied().find(|v| cand.rebased.contains_key(v));

    if let Some(def) = web_def {
        process_web_def(
            cand,
            block,
            k,
            def,
            env,
            outer_allocs,
            alloc_pos,
            def_pos,
            scalar_defs,
            ctx,
        );
        return;
    }
    // A transform *of* a web member defines a forward alias whose index
    // function must be rebased too ("all variables that are in an alias
    // relation to bs, for example as and cs", §V): cs = chg-layout(bs)
    // gets chg-layout ∘ ixfn_new(bs).
    if let Exp::Transform { src, tr } = &stm.exp {
        if let Some(src_mb) = cand.rebased.get(src) {
            match src_mb.ixfn.transform(tr) {
                Some(ixfn) => {
                    cand.rebased.insert(
                        stm.pat[0].var,
                        MemBinding {
                            block: cand.dst_block,
                            ixfn,
                        },
                    );
                }
                None => cand.fail(
                    RejectReason::NonInvertibleTransform,
                    "untransformable forward alias of the web",
                ),
            }
            return;
        }
    }
    // A statement outside the web: record its uses of the destination
    // memory. Reads of web members are *not* destination uses — the web's
    // memory holds exactly the member's semantic values at that point (the
    // uniqueness discipline orders writes).
    let skip: HashSet<Var> = cand.rebased.keys().copied().collect();
    let uses = stm_dst_uses(stm, cand.dst_block, &skip, env, ctx);
    cand.uses_dst.union(&uses);
}

/// Check a region the web is about to write against the collected uses of
/// the destination memory. With `force` (the test-only mutation hook) a
/// failing check is recorded as `forced` instead of failing the candidate.
fn check_write(cand: &mut Candidate, region: &Summary, env: &Env, what: &str, force: bool) {
    if !region.disjoint_from(&cand.uses_dst, env) {
        if force {
            cand.forced = true;
        } else {
            cand.fail(
                RejectReason::OverlapTestFailed,
                format!("write via {what} may overlap later uses of the destination memory"),
            );
        }
    }
    let mut w = cand.writes_bs.clone();
    w.union(region);
    cand.writes_bs = w;
}

/// Translate an index function to be valid at definition position `at`:
/// substitute (to a fixpoint) variables defined at or after `at` with their
/// scalar definitions; fail if any remain (§V-A(b)).
fn translate_ixfn(
    ixfn: &IndexFn,
    at: usize,
    def_pos: &HashMap<Var, usize>,
    scalar_defs: &HashMap<Var, Poly>,
) -> Result<IndexFn, Rejection> {
    let mut cur = ixfn.clone();
    for _ in 0..8 {
        let later: Vec<Var> = cur
            .vars()
            .into_iter()
            .filter(|v| def_pos.get(v).is_some_and(|&d| d >= at))
            .collect();
        if later.is_empty() {
            return Ok(cur);
        }
        let mut progressed = false;
        for v in later {
            if let Some(p) = scalar_defs.get(&v) {
                cur = cur.subst(v, p);
                progressed = true;
            } else {
                return Err(Rejection::new(
                    RejectReason::IxfnNotInScope,
                    format!("index function uses {v}, which is not in scope at the definition"),
                ));
            }
        }
        if !progressed {
            break;
        }
    }
    Err(Rejection::new(
        RejectReason::IxfnNotInScope,
        "index-function translation did not converge",
    ))
}

#[allow(clippy::too_many_arguments)]
fn process_web_def(
    cand: &mut Candidate,
    block: &Block,
    k: usize,
    def: Var,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    alloc_pos: &HashMap<Var, usize>,
    def_pos: &HashMap<Var, usize>,
    scalar_defs: &HashMap<Var, Poly>,
    ctx: &Ctx,
) {
    let stm = &block.stms[k];
    let binding = cand.rebased[&def].clone();
    // Property 3b: the binding must be expressible at this definition.
    let translated = match translate_ixfn(&binding.ixfn, k, def_pos, scalar_defs) {
        Ok(ix) => MemBinding {
            block: binding.block,
            ixfn: ix,
        },
        Err(e) => {
            cand.fail_with(e);
            return;
        }
    };
    cand.rebased.insert(def, translated.clone());

    let finalize = |cand: &mut Candidate| {
        // Property 2: destination memory allocated before this point.
        let ok = outer_allocs.contains(&cand.dst_block)
            || alloc_pos.get(&cand.dst_block).is_some_and(|&a| a < k);
        if !ok {
            cand.fail(
                RejectReason::DestinationNotAllocated,
                "destination memory not allocated at the fresh definition",
            );
            return;
        }
        cand.finished = true;
        cand.finished_at = Some(k);
    };

    match &stm.exp {
        Exp::Transform { src, tr } => {
            // bs = chg-layout(as): rebase as with the inverse transform
            // (§V-A(a)); only invertible transforms are supported.
            let src_shape = ctx
                .binding(*src)
                .map(|mb| mb.ixfn.shape())
                .unwrap_or_default();
            match translated.ixfn.untransform(tr, &src_shape) {
                Some(src_ixfn) => {
                    cand.rebased.insert(
                        *src,
                        MemBinding {
                            block: cand.dst_block,
                            ixfn: src_ixfn,
                        },
                    );
                }
                None => cand.fail(
                    RejectReason::NonInvertibleTransform,
                    "non-invertible change-of-layout transformation",
                ),
            }
        }
        Exp::Update {
            dst, slice, src, ..
        } => {
            if let SliceSpec::Scatter(_) = slice {
                // The web flows through a scatter: its write footprint is
                // runtime data, so there is no region to run the
                // non-overlap test against (see `arraymem_lmad::OpaqueIxFn`).
                cand.fail(
                    RejectReason::RuntimeIndexedWrite,
                    "web flows through a scatter whose write footprint is \
                     runtime data",
                );
                return;
            }
            // The web flows through the update: dst joins the web.
            cand.rebased.insert(*dst, translated.clone());
            let region = slice_region(&translated.ixfn, slice);
            check_write(cand, &region, env, "an in-place update", ctx.force_unsafe);
            if let UpdateSrc::Array(s) = src {
                if let Some(smb) = ctx.binding(*s) {
                    if smb.block == cand.dst_block && !cand.rebased.contains_key(s) {
                        // Copying from the destination memory into the web:
                        // the read must not overlap what the web writes
                        // later... conservatively require disjointness from
                        // the write region now.
                        let reads = ixfn_set(&smb.ixfn);
                        if !reads.disjoint_from(&region, env) {
                            cand.fail(
                                RejectReason::OverlapTestFailed,
                                "update source reads the written region",
                            );
                        }
                        cand.uses_dst.union(&reads);
                    }
                }
            }
        }
        Exp::Scratch { .. } => {
            // Uninitialized fresh array: nothing written yet.
            finalize(cand);
        }
        Exp::Iota(_) | Exp::Replicate { .. } => {
            let region = ixfn_set(&translated.ixfn);
            check_write(cand, &region, env, "a fresh-array fill", ctx.force_unsafe);
            finalize(cand);
        }
        Exp::Copy(src) => {
            let region = ixfn_set(&translated.ixfn);
            check_write(cand, &region, env, "a fresh copy", ctx.force_unsafe);
            if cand.rebased.contains_key(src) {
                cand.fail(
                    RejectReason::OverlapTestFailed,
                    "copy source is itself the rebased region",
                );
                return;
            }
            if let Some(smb) = ctx.binding(*src) {
                if smb.block == cand.dst_block {
                    let reads = ixfn_set(&smb.ixfn);
                    if !reads.disjoint_from(&region, env) {
                        cand.fail(
                            RejectReason::OverlapTestFailed,
                            "copy source overlaps the rebased destination region",
                        );
                    }
                }
            }
            finalize(cand);
        }
        Exp::Gather { src, idx } => {
            // A gather's *result* is written densely (affine), so eliding
            // the copy is sound like any fresh fill — but its reads of
            // `src` land at runtime positions, covered conservatively by
            // the whole of `src`'s index function (the `OpaqueIxFn` cover).
            let region = ixfn_set(&translated.ixfn);
            check_write(cand, &region, env, "a gather result", ctx.force_unsafe);
            for v in [src, idx] {
                if cand.rebased.contains_key(v) {
                    cand.fail(
                        RejectReason::OverlapTestFailed,
                        "gather operand is itself the rebased region",
                    );
                    return;
                }
                if let Some(mb) = ctx.binding(*v) {
                    if mb.block == cand.dst_block {
                        let reads = ixfn_set(&mb.ixfn);
                        if !reads.disjoint_from(&region, env) {
                            cand.fail(
                                RejectReason::OverlapTestFailed,
                                "gather operand may overlap the rebased \
                                 destination region",
                            );
                        }
                    }
                }
            }
            finalize(cand);
        }
        Exp::Concat { args, .. } => {
            let region = ixfn_set(&translated.ixfn);
            check_write(cand, &region, env, "a concatenation", ctx.force_unsafe);
            for a in args {
                if let Some(amb) = ctx.binding(*a) {
                    if amb.block == cand.dst_block && !cand.rebased.contains_key(a) {
                        let reads = ixfn_set(&amb.ixfn);
                        if !reads.disjoint_from(&region, env) {
                            cand.fail(
                                RejectReason::OverlapTestFailed,
                                "concat argument overlaps the rebased region",
                            );
                        }
                    }
                }
            }
            finalize(cand);
        }
        Exp::Map(m) => {
            // The fresh definition is a parallel mapnest: its iterations
            // execute out of order. Reads of the destination memory must
            // be disjoint from the write region — entirely for inputs read
            // arbitrarily, and for every *other* iteration's row for
            // inputs read row-wise (§V-B: U(j≠i) ∩ W(i) = ∅).
            let region = ixfn_set(&translated.ixfn);
            check_write(cand, &region, env, "a mapnest result", ctx.force_unsafe);
            let whole: &[usize] = match &m.body {
                MapBody::Kernel { whole_inputs, .. } => whole_inputs,
                MapBody::Lambda { .. } => &[],
            };
            for (ii, inp) in m.inputs.iter().enumerate() {
                let imb = match cand.rebased.get(inp) {
                    Some(mb) => mb.clone(),
                    None => match ctx.binding(*inp) {
                        Some(mb) => mb,
                        None => continue,
                    },
                };
                if imb.block != cand.dst_block {
                    continue;
                }
                let reads = ixfn_set(&imb.ixfn);
                // Whole-set disjointness suffices (the NW case: Fig. 9).
                if reads.disjoint_from(&region, env) {
                    continue;
                }
                let row_wise = !whole.contains(&ii) && imb.ixfn.rank() >= 1;
                if row_wise && rowwise_map_disjoint(&translated.ixfn, &imb.ixfn, &m.width, env) {
                    continue;
                }
                cand.fail(
                    RejectReason::OverlapTestFailed,
                    format!("mapnest input {inp} overlaps the rebased write region"),
                );
            }
            finalize(cand);
        }
        Exp::If { then_b, else_b, .. } => {
            // Fig. 5a: short-circuit each branch's result independently.
            let pos = stm
                .pat
                .iter()
                .position(|pe| pe.var == def)
                .expect("web def in pattern");
            let mut visible_allocs = outer_allocs.clone();
            for (v, &at) in alloc_pos {
                if at < k {
                    visible_allocs.insert(*v);
                }
            }
            let mut ok = true;
            for branch in [then_b, else_b] {
                match analyze_nested_result(
                    branch,
                    branch.result[pos],
                    &translated,
                    cand.dst_block,
                    env,
                    &visible_allocs,
                    ctx,
                ) {
                    Ok((reb, uses, writes)) => {
                        for (v, mb) in reb {
                            cand.rebased.insert(v, mb);
                        }
                        cand.uses_dst.union(&uses);
                        let mut w = cand.writes_bs.clone();
                        w.union(&writes);
                        cand.writes_bs = w;
                    }
                    Err(e) => {
                        cand.fail(e.kind, format!("if-branch analysis failed: {}", e.message));
                        ok = false;
                        break;
                    }
                }
            }
            if ok && cand.failed.is_none() {
                finalize(cand);
            }
        }
        Exp::Loop {
            params,
            inits,
            index,
            count,
            body,
        } => {
            // Fig. 5b: (1) the merge size is invariant by construction;
            // (2) short-circuit the body result within the body;
            // (3) ordering emerges from treating the merge parameter as a
            //     destination-resident array whose reads are uses;
            // (4) rebase the initializer and keep walking upward.
            let pos = stm
                .pat
                .iter()
                .position(|pe| pe.var == def)
                .expect("web def in pattern");
            let mut env2 = env.clone();
            env2.assume_ge(*index, 0);
            env2.assume_le(*index, count.clone() - Poly::constant(1));
            let param_var = params[pos].var;
            let mut visible_allocs = outer_allocs.clone();
            for (v, &at) in alloc_pos {
                if at < k {
                    visible_allocs.insert(*v);
                }
            }
            match analyze_loop_body(
                body,
                body.result[pos],
                param_var,
                &translated,
                cand.dst_block,
                &env2,
                &visible_allocs,
                ctx,
            ) {
                Ok((reb, uses_i, writes_i)) => {
                    for (v, mb) in reb {
                        cand.rebased.insert(v, mb);
                    }
                    // Cross-iteration safety: the writes of iteration i must
                    // not overlap the uses of any *later* iteration j > i
                    // (the loop is sequential; fig. 7b).
                    if !cross_iteration_disjoint(&writes_i, &uses_i, *index, count, env) {
                        cand.fail(
                            RejectReason::OverlapTestFailed,
                            "loop writes may overlap later iterations' uses",
                        );
                        return;
                    }
                    // Aggregate the body summaries over the whole loop.
                    let uses_all = uses_i.aggregate(*index, count, env);
                    let writes_all = writes_i.aggregate(*index, count, env);
                    if !writes_all.disjoint_from(&cand.uses_dst, env) {
                        cand.fail(
                            RejectReason::OverlapTestFailed,
                            "loop writes may overlap uses after the loop",
                        );
                        return;
                    }
                    cand.uses_dst.union(&uses_all);
                    let mut w = cand.writes_bs.clone();
                    w.union(&writes_all);
                    cand.writes_bs = w;
                    // The initializer joins the web with the same binding.
                    cand.rebased.insert(inits[pos], translated.clone());
                }
                Err(e) => cand.fail(e.kind, format!("loop-body analysis failed: {}", e.message)),
            }
        }
        Exp::Scalar(_) | Exp::Alloc { .. } => {
            cand.fail(
                RejectReason::UnsupportedDefinition,
                "web member defined by a non-array expression",
            );
        }
    }
}

/// Analyze a nested block in which `target` (the block's result) must be
/// short-circuited to `binding`. Returns the rebased web and the block's
/// destination uses/writes.
fn analyze_nested_result(
    block: &Block,
    target: Var,
    binding: &MemBinding,
    dst_block: Var,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    ctx: &Ctx,
) -> Result<(HashMap<Var, MemBinding>, Summary, Summary), Rejection> {
    let (reb, uses, writes, _) = analyze_nested_candidate(
        block,
        target,
        None,
        binding,
        dst_block,
        env,
        outer_allocs,
        ctx,
    )?;
    Ok((reb, uses, writes))
}

/// Run the backward candidate analysis over a nested block. `extra_web`
/// optionally seeds another variable (a loop merge parameter) into the
/// web with the same binding.
/// Rebased bindings for the web, its write/use summaries, and the
/// position of the destination alloc if the nested block owns it.
type NestedCandidateResult =
    Result<(HashMap<Var, MemBinding>, Summary, Summary, Option<usize>), Rejection>;

#[allow(clippy::too_many_arguments)]
fn analyze_nested_candidate(
    block: &Block,
    target: Var,
    extra_web: Option<(Var, MemBinding)>,
    binding: &MemBinding,
    dst_block: Var,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    ctx: &Ctx,
) -> NestedCandidateResult {
    let mut alloc_pos: HashMap<Var, usize> = HashMap::new();
    let mut def_pos: HashMap<Var, usize> = HashMap::new();
    let mut scalar_defs: HashMap<Var, Poly> = HashMap::new();
    for (k, stm) in block.stms.iter().enumerate() {
        for pe in &stm.pat {
            def_pos.insert(pe.var, k);
        }
        match &stm.exp {
            Exp::Alloc { .. } => {
                alloc_pos.insert(stm.pat[0].var, k);
            }
            Exp::Scalar(se) => {
                if let Some(p) = scalar_to_poly(se) {
                    scalar_defs.insert(stm.pat[0].var, p);
                }
            }
            _ => {}
        }
    }
    let mut web = HashMap::from([(target, binding.clone())]);
    if let Some((v, mb)) = extra_web {
        web.insert(v, mb);
    }
    let mut child = Candidate {
        kind: CandidateKind::Update,
        root: target,
        dst_block,
        rebased: web,
        uses_dst: Summary::empty(),
        writes_bs: Summary::empty(),
        circuit_at: block.stms.len(),
        action: CircuitAction::ElideUpdate,
        failed: None,
        finished: false,
        finished_at: None,
        forced: false,
    };
    for k in (0..block.stms.len()).rev() {
        if !child.active() {
            break;
        }
        process_stm(
            &mut child,
            block,
            k,
            env,
            outer_allocs,
            &alloc_pos,
            &def_pos,
            &scalar_defs,
            ctx,
        );
    }
    if let Some(e) = child.failed {
        return Err(e);
    }
    if !child.finished {
        return Err(Rejection::new(
            RejectReason::FreshDefNotFound,
            "nested result's fresh definition not found",
        ));
    }
    Ok((
        child.rebased,
        child.uses_dst,
        child.writes_bs,
        child.finished_at,
    ))
}

/// Like [`analyze_nested_result`] but for a loop body, where the merge
/// parameter (the previous iteration's value) is treated as an array
/// resident in the destination memory with the same binding — its reads
/// therefore register as destination uses, which is exactly condition (3)
/// of Fig. 5b.
#[allow(clippy::too_many_arguments)]
fn analyze_loop_body(
    body: &Block,
    target: Var,
    param: Var,
    binding: &MemBinding,
    dst_block: Var,
    env: &Env,
    outer_allocs: &HashSet<Var>,
    ctx: &Ctx,
) -> Result<(HashMap<Var, MemBinding>, Summary, Summary), Rejection> {
    let (reb, uses, writes, finished_at) = analyze_nested_candidate(
        body,
        target,
        Some((param, binding.clone())),
        binding,
        dst_block,
        env,
        outer_allocs,
        ctx,
    )?;
    // Fig. 5b condition (3): the web's fresh definition must come after
    // the last use of the iteration input `param` — otherwise the previous
    // iteration's values would be read after being overwritten.
    if let Some(f) = finished_at {
        for stm in &body.stms[f + 1..] {
            if stm.exp.free_vars().contains(&param) {
                return Err(Rejection::new(
                    RejectReason::MergeParamOrder,
                    format!("merge parameter {param} used at or after the fresh definition"),
                ));
            }
        }
        if body.result.contains(&param) {
            return Err(Rejection::new(
                RejectReason::MergeParamOrder,
                format!("merge parameter {param} escapes the body"),
            ));
        }
    }
    Ok((reb, uses, writes))
}

/// Per-iteration mapnest check: writes of iteration `i` (row `i` of the
/// rebased output) must not overlap the row-wise reads of any *other*
/// iteration `j ≠ i` (iterations execute out of order, §V-B). Same-row
/// overlap is fine: instance `i` reads its own inputs before/while writing
/// its own row, with no cross-instance interference.
pub(crate) fn rowwise_map_disjoint(
    out_ixfn: &IndexFn,
    in_ixfn: &IndexFn,
    width: &Poly,
    env: &Env,
) -> bool {
    let i = Sym::fresh("map_i");
    let d = Sym::fresh("map_d");
    let row = |ixfn: &IndexFn, at: Poly| -> Option<Lmad> {
        let shape = ixfn.shape();
        let mut ts = vec![TripletSlice::Fix(at)];
        for s in &shape[1..] {
            ts.push(TripletSlice::full(s.clone()));
        }
        let f = ixfn.transform(&Transform::Slice(ts))?;
        f.as_single().cloned()
    };
    let mut env2 = env.clone();
    env2.assume_ge(i, 0);
    env2.assume_ge(d, 0);
    // Both i and j = i+1+d lie in [0, width).
    env2.assume_le(i, width.clone() - Poly::constant(2) - Poly::var(d));
    env2.assume_le(d, width.clone() - Poly::constant(2));
    let j = Poly::var(i) + Poly::constant(1) + Poly::var(d);
    // Direction 1: write row i vs read row j > i.
    // Direction 2: write row j vs read row i < j.
    let (Some(w_i), Some(u_j)) = (row(out_ixfn, Poly::var(i)), row(in_ixfn, j.clone())) else {
        return false;
    };
    let (Some(w_j), Some(u_i)) = (row(out_ixfn, j), row(in_ixfn, Poly::var(i))) else {
        return false;
    };
    non_overlap(&w_i, &u_j, &env2) && non_overlap(&w_j, &u_i, &env2)
}

/// `W(i) ∩ U(j) = ∅` for all `j > i` within the loop bounds: substitute
/// `j = i + 1 + d`, `d ≥ 0`, and test pairwise non-overlap.
fn cross_iteration_disjoint(
    writes_i: &Summary,
    uses_i: &Summary,
    index: Var,
    count: &Poly,
    env: &Env,
) -> bool {
    if uses_i.is_empty() || writes_i.is_empty() {
        return true;
    }
    let (Some(ws), Some(us)) = (writes_i.lmads(), uses_i.lmads()) else {
        return false;
    };
    let d = Sym::fresh("iter_d");
    let j = Poly::var(index) + Poly::constant(1) + Poly::var(d);
    let mut env2 = env.clone();
    env2.assume_ge(index, 0);
    env2.assume_ge(d, 0);
    // j ≤ count - 1  ⇒  d ≤ count - 2 - i
    env2.assume_le(d, count.clone() - Poly::constant(2) - Poly::var(index));
    for w in ws {
        for u in us {
            let u_later = u.subst(index, &j);
            if !non_overlap(w, &u_later, &env2) {
                return false;
            }
        }
    }
    true
}

/// Uses of the destination memory made by one statement outside the web
/// (reads and writes both count — §V-B).
fn stm_dst_uses(stm: &Stm, dst_block: Var, skip: &HashSet<Var>, env: &Env, ctx: &Ctx) -> Summary {
    let mut uses = Summary::empty();
    let add_var = |v: Var, uses: &mut Summary| {
        if skip.contains(&v) {
            return;
        }
        if let Some(mb) = ctx.binding(v) {
            if mb.block == dst_block {
                uses.union(&ixfn_set(&mb.ixfn));
            }
        }
    };
    match &stm.exp {
        Exp::Update {
            dst, slice, src, ..
        } => {
            if !skip.contains(dst) {
                if let Some(mb) = ctx.binding(*dst) {
                    if mb.block == dst_block {
                        uses.union(&slice_region(&mb.ixfn, slice));
                    }
                }
            }
            if let UpdateSrc::Array(s) = src {
                add_var(*s, &mut uses);
            }
        }
        Exp::If { then_b, else_b, .. } => {
            uses.union(&block_dst_uses(then_b, dst_block, skip, env, ctx));
            uses.union(&block_dst_uses(else_b, dst_block, skip, env, ctx));
        }
        Exp::Loop {
            params,
            inits,
            index,
            count,
            body,
        } => {
            for init in inits {
                add_var(*init, &mut uses);
            }
            // A nested loop's body uses, aggregated over its iterations.
            let mut env2 = env.clone();
            env2.assume_ge(*index, 0);
            env2.assume_le(*index, count.clone() - Poly::constant(1));
            let mut inner = block_dst_uses(body, dst_block, skip, env, ctx);
            for pe in params {
                if let Some(mb) = &pe.mem {
                    if mb.block == dst_block {
                        inner.union(&ixfn_set(&mb.ixfn));
                    }
                }
            }
            uses.union(&inner.aggregate(*index, count, &env2));
        }
        // Change-of-layout transforms are O(1) metadata operations: they
        // touch no memory and are not uses.
        Exp::Transform { .. } => {}
        _ => {
            for v in stm.exp.free_vars() {
                add_var(v, &mut uses);
            }
        }
    }
    uses
}

/// All uses of the destination memory in a block (recursive).
fn block_dst_uses(
    block: &Block,
    dst_block: Var,
    skip: &HashSet<Var>,
    env: &Env,
    ctx: &Ctx,
) -> Summary {
    let mut uses = Summary::empty();
    for stm in &block.stms {
        uses.union(&stm_dst_uses(stm, dst_block, skip, env, ctx));
        // Writes via bindings into the destination block also count.
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                if mb.block == dst_block {
                    uses.union(&ixfn_set(&mb.ixfn));
                }
            }
        }
    }
    uses
}

/// Rewrite the definitions of rebased variables with their new bindings.
fn apply_rebase(block: &mut Block, rebased: &HashMap<Var, MemBinding>) {
    for stm in &mut block.stms {
        for pe in &mut stm.pat {
            if let Some(mb) = rebased.get(&pe.var) {
                pe.mem = Some(mb.clone());
            }
        }
        match &mut stm.exp {
            Exp::If { then_b, else_b, .. } => {
                apply_rebase(then_b, rebased);
                apply_rebase(else_b, rebased);
            }
            Exp::Loop { params, body, .. } => {
                for pe in params.iter_mut() {
                    if let Some(mb) = rebased.get(&pe.var) {
                        pe.mem = Some(mb.clone());
                    }
                }
                apply_rebase(body, rebased);
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &mut m.body {
                    apply_rebase(body, rebased);
                }
            }
            _ => {}
        }
    }
}

/// Post-pass: a kernel map with a non-scalar row may construct each row
/// directly in its result memory when no input view can alias memory the
/// map is writing (§V-A(e)). With the final (possibly rebased) bindings
/// this is a local check per map statement.
fn mark_in_place_maps(block: &mut Block, env: &Env, ctx: &mut Ctx) {
    // Rebuild the final bindings (pattern annotations are authoritative).
    let mut bindings: HashMap<Var, MemBinding> = ctx.bindings.clone();
    let mut tmp = HashMap::new();
    crate::introduce::collect_bindings(block, &mut tmp);
    bindings.extend(tmp);
    mark_block(block, env, &bindings, &mut ctx.report);
}

fn mark_block(
    block: &mut Block,
    env: &Env,
    bindings: &HashMap<Var, MemBinding>,
    report: &mut Report,
) {
    for stm in &mut block.stms {
        match &mut stm.exp {
            Exp::Map(m) => {
                let is_row = matches!(
                    &m.body,
                    MapBody::Kernel { row_shape, .. } if !row_shape.is_empty()
                );
                if is_row {
                    let out_mb = stm.pat[0]
                        .mem
                        .clone()
                        .or_else(|| bindings.get(&stm.pat[0].var).cloned());
                    if let Some(out_mb) = out_mb {
                        let out_set = ixfn_set(&out_mb.ixfn);
                        let whole: &[usize] = match &m.body {
                            MapBody::Kernel { whole_inputs, .. } => whole_inputs,
                            MapBody::Lambda { .. } => &[],
                        };
                        let mut safe = true;
                        for (ii, inp) in m.inputs.iter().enumerate() {
                            let Some(imb) = bindings.get(inp) else {
                                continue;
                            };
                            if imb.block != out_mb.block {
                                continue;
                            }
                            if out_set.disjoint_from(&ixfn_set(&imb.ixfn), env) {
                                continue;
                            }
                            // Row-wise inputs: the per-iteration check the
                            // candidate analysis already performed (§V-B).
                            let row_wise = !whole.contains(&ii) && imb.ixfn.rank() >= 1;
                            if row_wise
                                && rowwise_map_disjoint(&out_mb.ixfn, &imb.ixfn, &m.width, env)
                            {
                                continue;
                            }
                            safe = false;
                            break;
                        }
                        if safe {
                            m.in_place_result = true;
                            report.in_place_maps += 1;
                            report.in_place_stms.push(stm.pat[0].var);
                        }
                    }
                }
            }
            Exp::If { then_b, else_b, .. } => {
                mark_block(then_b, env, bindings, report);
                mark_block(else_b, env, bindings, report);
            }
            Exp::Loop {
                index, count, body, ..
            } => {
                let mut env2 = env.clone();
                env2.assume_ge(*index, 0);
                env2.assume_le(*index, count.clone() - Poly::constant(1));
                mark_block(body, &env2, bindings, report);
            }
            _ => {}
        }
    }
}
