//! Anti-unification (least general generalization) of index functions
//! (paper §IV-C).
//!
//! The branches of an `if` (or a loop's initializer and body result) may
//! lay out the "same" array with different index functions. Their lgg
//! keeps the common structure (number of LMADs, ranks, cardinalities) and
//! replaces disagreeing offsets/strides by fresh *existential* variables
//! whose per-branch values are returned alongside.

use arraymem_lmad::{Dim, IndexFn, Lmad};
use arraymem_symbolic::{Poly, Sym};

/// One existential introduced by anti-unification: the fresh variable and
/// its value in each of the two sides.
#[derive(Clone, Debug)]
pub struct Existential {
    pub var: Sym,
    pub left: Poly,
    pub right: Poly,
}

/// Anti-unify two index functions. Returns the generalization and the
/// existentials, or `None` when the structures disagree (different chain
/// lengths, ranks, or cardinalities) — in which case the caller inserts
/// normalization copies (§IV-C).
pub fn anti_unify(a: &IndexFn, b: &IndexFn) -> Option<(IndexFn, Vec<Existential>)> {
    if a.lmads.len() != b.lmads.len() {
        return None;
    }
    let mut exts: Vec<Existential> = Vec::new();
    let mut lmads = Vec::with_capacity(a.lmads.len());
    for (la, lb) in a.lmads.iter().zip(&b.lmads) {
        lmads.push(anti_unify_lmad(la, lb, &mut exts)?);
    }
    Some((IndexFn { lmads }, exts))
}

fn anti_unify_lmad(a: &Lmad, b: &Lmad, exts: &mut Vec<Existential>) -> Option<Lmad> {
    if a.dims.len() != b.dims.len() {
        return None;
    }
    let offset = generalize(&a.offset, &b.offset, exts);
    let mut dims = Vec::with_capacity(a.dims.len());
    for (da, db) in a.dims.iter().zip(&b.dims) {
        // Cardinalities are shapes; they must agree or the arrays are not
        // even the same size.
        if da.card != db.card {
            return None;
        }
        dims.push(Dim {
            card: da.card.clone(),
            stride: generalize(&da.stride, &db.stride, exts),
        });
    }
    Some(Lmad { offset, dims })
}

fn generalize(a: &Poly, b: &Poly, exts: &mut Vec<Existential>) -> Poly {
    if a == b {
        return a.clone();
    }
    // Reuse an existing existential with the same pair of values, so e.g.
    // equal strides generalize to the same variable.
    if let Some(e) = exts.iter().find(|e| &e.left == a && &e.right == b) {
        return Poly::var(e.var);
    }
    let var = Sym::fresh("ext");
    exts.push(Existential {
        var,
        left: a.clone(),
        right: b.clone(),
    });
    Poly::var(var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arraymem_symbolic::{sym, Poly};

    fn v(name: &str) -> Poly {
        Poly::var(sym(name))
    }

    #[test]
    fn lgg_of_row_and_col_major() {
        // Paper §IV-C: lgg of R(n,m) and C(n,m) is 0 + {(n:a)(m:b)}.
        let n = v("n");
        let m = v("m");
        let r = IndexFn::row_major(&[n.clone(), m.clone()]);
        let c = IndexFn::col_major(&[n.clone(), m.clone()]);
        let (g, exts) = anti_unify(&r, &c).unwrap();
        assert_eq!(exts.len(), 2);
        let l = g.as_single().unwrap();
        assert_eq!(l.offset, Poly::zero());
        assert_eq!(l.dims[0].card, n);
        assert_eq!(l.dims[1].card, m);
        // strides are the two existentials with values (m,1) and (1,n)
        assert_eq!(exts[0].left, m);
        assert_eq!(exts[0].right, Poly::constant(1));
        assert_eq!(exts[1].left, Poly::constant(1));
        assert_eq!(exts[1].right, n);
    }

    #[test]
    fn lgg_identical_is_identity() {
        let r = IndexFn::row_major(&[v("n")]);
        let (g, exts) = anti_unify(&r, &r.clone()).unwrap();
        assert!(exts.is_empty());
        assert_eq!(g, r);
    }

    #[test]
    fn lgg_shares_existentials_for_equal_pairs() {
        // Offsets differ identically in two places: one existential.
        let a = IndexFn::from_lmad(Lmad::new(v("x"), vec![Dim::new(v("n"), v("x"))]));
        let b = IndexFn::from_lmad(Lmad::new(v("y"), vec![Dim::new(v("n"), v("y"))]));
        let (g, exts) = anti_unify(&a, &b).unwrap();
        assert_eq!(exts.len(), 1);
        let l = g.as_single().unwrap();
        assert_eq!(l.offset, Poly::var(exts[0].var));
        assert_eq!(l.dims[0].stride, Poly::var(exts[0].var));
    }

    #[test]
    fn lgg_fails_on_rank_mismatch() {
        let a = IndexFn::row_major(&[v("n")]);
        let b = IndexFn::row_major(&[v("n"), v("m")]);
        assert!(anti_unify(&a, &b).is_none());
    }

    #[test]
    fn lgg_fails_on_card_mismatch() {
        let a = IndexFn::row_major(&[v("n")]);
        let b = IndexFn::row_major(&[v("m")]);
        assert!(anti_unify(&a, &b).is_none());
    }

    #[test]
    fn lgg_fails_on_chain_length_mismatch() {
        let single = IndexFn::row_major(&[v("n")]);
        let double = IndexFn {
            lmads: vec![
                Lmad::new(0, vec![Dim::new(v("n"), 2)]),
                Lmad::new(0, vec![Dim::new(v("n"), 1)]),
            ],
        };
        assert!(anti_unify(&single, &double).is_none());
    }
}
