//! Dead-allocation elimination: after short-circuiting rebases arrays into
//! destination memory, their original blocks may be entirely unreferenced;
//! remove those `alloc` statements (this is where the footprint reduction
//! comes from, in addition to the copy elision).

use arraymem_ir::{Block, Exp, MapBody, Program, Var};
use std::collections::HashSet;

/// Remove `alloc` statements whose block variable is referenced by no
/// memory binding, expression, or block result anywhere in the program.
/// Returns the block variables of the removed allocations, which the pass
/// pipeline reports as remarks.
pub fn remove_dead_allocs(prog: &mut Program) -> Vec<Var> {
    let mut used: HashSet<Var> = HashSet::new();
    collect_used(&prog.body, &mut used);
    let mut removed = Vec::new();
    prune(&mut prog.body, &used, &mut removed);
    removed
}

fn collect_used(block: &Block, used: &mut HashSet<Var>) {
    for stm in &block.stms {
        // An alloc's own pattern var does not count as a use.
        if !matches!(stm.exp, Exp::Alloc { .. }) {
            used.extend(stm.exp.free_vars());
        }
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                used.insert(mb.block);
                used.extend(mb.ixfn.vars());
            }
        }
        match &stm.exp {
            Exp::If { then_b, else_b, .. } => {
                collect_used(then_b, used);
                collect_used(else_b, used);
            }
            Exp::Loop { body, inits, .. } => {
                used.extend(inits.iter().copied());
                collect_used(body, used);
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &m.body {
                    collect_used(body, used);
                }
            }
            _ => {}
        }
    }
    used.extend(block.result.iter().copied());
}

fn prune(block: &mut Block, used: &HashSet<Var>, removed: &mut Vec<Var>) {
    block.stms.retain(|stm| {
        let keep = !matches!(stm.exp, Exp::Alloc { .. }) || used.contains(&stm.pat[0].var);
        if !keep {
            removed.push(stm.pat[0].var);
        }
        keep
    });
    for stm in &mut block.stms {
        match &mut stm.exp {
            Exp::If { then_b, else_b, .. } => {
                prune(then_b, used, removed);
                prune(else_b, used, removed);
            }
            Exp::Loop { body, .. } => prune(body, used, removed),
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &mut m.body {
                    prune(body, used, removed);
                }
            }
            _ => {}
        }
    }
}
