//! Memory block merging: whole-program coloring of the allocation
//! interference graph.
//!
//! Short-circuiting removes copies by constructing an array *inside* its
//! destination's memory; this pass removes whole allocations by letting
//! arrays whose blocks never interfere share a block outright — the
//! affine-reuse idea of FORAY-GEN and of redundant-array elimination,
//! applied at the granularity of the IR's `alloc` statements.
//!
//! Two blocks **interfere** when their live ranges overlap *and* their
//! LMAD footprints are not provably disjoint
//! ([`arraymem_lmad::overlap::non_overlap`]). The pass builds the **full
//! interference graph** over the top-level allocations (every candidate
//! pair compared once, refined by the symbolic footprint test under
//! `Env`), then linear-scans it in first-use order, assigning each block
//! the first *color* none of whose members it interferes with. All
//! members of a color share one allocation — the color's representative —
//! so *k* allocations collapse to the number of colors the scan needs.
//! Under `coloring` the representative's allocation may also be **grown**
//! to a later member's provably larger size (when that size is in scope
//! at the representative's `alloc`), so a smaller-first program order no
//! longer blocks sharing.
//!
//! Legality is two-tiered, and the tier is observable:
//!
//! - **Lifetime-justified** merges (disjoint live ranges at top-level
//!   statement granularity) need no runtime support; their
//!   [`MergeRecord::Share`] pairs list is empty.
//! - **Footprint-justified** merges (overlapping live ranges, symbolically
//!   disjoint footprints) record every footprint pair whose disjointness
//!   the symbolic test approved; the checked-mode VM re-proves each pair
//!   concretely at runtime, the way `CircuitCheck` footprints are
//!   re-proved.
//!
//! **Loop-carried existential memory** gets its own treatment instead of
//! the historical bail to lifetime-only merging: a top-level loop that
//! ping-pongs its carried block (each iteration allocates a fresh yield
//! block, making the incoming block dead at the yield) is assigned a
//! *color* whose blocks the executor recycles per iteration — a
//! [`MergeRecord::CarriedRelease`] instructs the plan to release the
//! incoming block into the color's slab once its last in-body use has
//! passed, and the yield `alloc` draws from the same slab. Peak usage
//! drops from one block per iteration to the ping-pong pair. Checked mode
//! re-proves the assignment concretely: the released block's shadow cells
//! flip to `Released`, so any read the static last-use analysis missed
//! surfaces as a `UseAfterRelease` diagnostic.
//!
//! Ordering: after `short_circuit` (so rebased webs are seen in their
//! final blocks), before `cleanup` (which deletes the vacated `alloc`s)
//! and `release` (whose plan sees the merged liveness).

use crate::introduce::collect_bindings;
use crate::remark::MergeReject;
use arraymem_ir::{Block, ElemType, Exp, MapBody, MemBinding, Program, SliceSpec, Type, Var};
use arraymem_lmad::overlap::non_overlap;
use arraymem_lmad::Lmad;
use arraymem_symbolic::{Env, Poly};
use std::collections::{HashMap, HashSet};

/// Union-find over memory variables: two mem vars land in one class when
/// a loop or branch can make them name the same runtime block (a loop's
/// merge parameter aliases its initializer, its per-iteration result and
/// the loop's output; a branch output aliases both branch results). A
/// candidate block's liveness must then count every touch of its class.
struct MemAliases {
    parent: HashMap<Var, Var>,
}

impl MemAliases {
    fn find(&mut self, v: Var) -> Var {
        let p = match self.parent.get(&v) {
            Some(p) => *p,
            None => return v,
        };
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: Var, b: Var) {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parent.entry(ra).or_insert(ra);
        self.parent.entry(rb).or_insert(rb);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    /// Build the alias classes of a whole program body.
    fn build(block: &Block) -> MemAliases {
        let mut uf = MemAliases {
            parent: HashMap::new(),
        };
        uf.scan(block);
        uf
    }

    fn scan(&mut self, block: &Block) {
        for stm in &block.stms {
            match &stm.exp {
                Exp::If { then_b, else_b, .. } => {
                    for (k, pe) in stm.pat.iter().enumerate() {
                        if matches!(pe.ty, Type::Mem) {
                            if let Some(r) = then_b.result.get(k) {
                                self.union(pe.var, *r);
                            }
                            if let Some(r) = else_b.result.get(k) {
                                self.union(pe.var, *r);
                            }
                        }
                    }
                    self.scan(then_b);
                    self.scan(else_b);
                }
                Exp::Loop {
                    params,
                    inits,
                    body,
                    ..
                } => {
                    for (k, pp) in params.iter().enumerate() {
                        if matches!(pp.ty, Type::Mem) {
                            if let Some(init) = inits.get(k) {
                                self.union(pp.var, *init);
                            }
                            // Iteration n+1's parameter is iteration n's
                            // result; the loop output is the last one.
                            if let Some(r) = body.result.get(k) {
                                self.union(pp.var, *r);
                            }
                            if let Some(pe) = stm.pat.get(k) {
                                self.union(pp.var, pe.var);
                            }
                        }
                    }
                    self.scan(body);
                }
                Exp::Map(m) => {
                    if let MapBody::Lambda { body, .. } = &m.body {
                        self.scan(body);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Array variables read or written through **runtime indices** — a
/// gather's source, a scatter's destination — at every nesting depth.
/// The blocks backing these arrays have no affine footprint summary (see
/// [`arraymem_lmad::OpaqueIxFn`]): a runtime index may land anywhere
/// within the extent, so footprint-justified sharing is off the table for
/// them and only disjoint lifetimes can let them share a block.
fn runtime_indexed_arrays(block: &Block, out: &mut Vec<Var>) {
    for stm in &block.stms {
        match &stm.exp {
            Exp::Gather { src, .. } => out.push(*src),
            Exp::Update {
                dst,
                slice: SliceSpec::Scatter(_),
                ..
            } => out.push(*dst),
            Exp::If { then_b, else_b, .. } => {
                runtime_indexed_arrays(then_b, out);
                runtime_indexed_arrays(else_b, out);
            }
            Exp::Loop { body, .. } => runtime_indexed_arrays(body, out),
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &m.body {
                    runtime_indexed_arrays(body, out);
                }
            }
            _ => {}
        }
    }
}

/// Memory bindings (pattern or loop parameter) at nesting depth ≥ 1
/// inside an expression — the tenants `Exp::free_vars` cannot surface.
fn deep_blocks(exp: &Exp, out: &mut Vec<Var>) {
    fn scan_block(b: &Block, out: &mut Vec<Var>) {
        for stm in &b.stms {
            for pe in &stm.pat {
                if let Some(mb) = &pe.mem {
                    out.push(mb.block);
                }
            }
            deep_blocks(&stm.exp, out);
        }
    }
    match exp {
        Exp::If { then_b, else_b, .. } => {
            scan_block(then_b, out);
            scan_block(else_b, out);
        }
        Exp::Loop { params, body, .. } => {
            for pp in params {
                if let Some(mb) = &pp.mem {
                    out.push(mb.block);
                }
            }
            scan_block(body, out);
        }
        Exp::Map(m) => {
            if let MapBody::Lambda { body, .. } = &m.body {
                scan_block(body, out);
            }
        }
        _ => {}
    }
}

/// One coloring decision, in the transport form the executor consumes.
#[derive(Clone, Debug)]
pub enum MergeRecord {
    /// Compile-time sharing: `victim`'s bindings were rewritten onto
    /// `host`, and its `alloc` went dead. Empty `pairs` means the merge is
    /// lifetime-justified and needs no runtime re-proof.
    Share {
        /// The block that survives and absorbs the victim's tenants.
        host: Var,
        /// The block whose bindings were rewritten onto `host`.
        victim: Var,
        /// (victim-tenant, resident-tenant) footprint pairs the symbolic
        /// non-overlap test approved; checked mode enumerates each pair
        /// concretely.
        pairs: Vec<(Lmad, Lmad)>,
    },
    /// Runtime recycling of loop-carried ping-pong memory: inside the
    /// top-level loop carrying mem parameter `loop_mem`, the incoming
    /// block is dead once the statement binding `after_stm` has executed
    /// (its last in-body use, and the yield block `yield_mem` is already
    /// allocated so the executor's identity guard has both ends). The
    /// plan releases it into color `color`'s slab there, and `yield_mem`'s
    /// `alloc` draws from the same slab — a two-block ping-pong instead of
    /// one live block per iteration. Checked mode re-proves the
    /// assignment: the released block's shadow flips to `Released`, so a
    /// read past the analyzed last use raises `UseAfterRelease`.
    CarriedRelease {
        /// The loop's mem merge parameter (the per-iteration incoming
        /// block).
        loop_mem: Var,
        /// The body-local `alloc` yielded as the iteration's carried
        /// block.
        yield_mem: Var,
        /// First pattern variable of the body statement after which the
        /// incoming block may be released.
        after_stm: Var,
        /// The runtime slab this loop's blocks cycle through.
        color: u32,
    },
}

/// One merge decision, for remarks and tests.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    pub host: Var,
    pub victim: Var,
    /// Live ranges overlapped; disjoint footprints justified the merge.
    pub by_footprint: bool,
    /// Pushed through a failing interference check by the test-only
    /// `force_unsafe_merge` hook.
    pub forced: bool,
}

/// A host allocation grown to a later color member's provably larger
/// size (the member's size was in scope at the host's `alloc`).
#[derive(Clone, Debug)]
pub struct HostGrowth {
    pub host: Var,
    /// The member whose size the host grew to.
    pub member: Var,
    pub from: Poly,
    pub to: Poly,
}

/// Everything the merge pass decided, for the pipeline to turn into
/// remarks and for the executor to verify.
#[derive(Clone, Debug, Default)]
pub struct MergeReport {
    pub merged: Vec<MergeOutcome>,
    /// Host allocations grown under `coloring`.
    pub grown: Vec<HostGrowth>,
    /// Blocks that kept their own allocation, with the reason the closed
    /// taxonomy assigns (precedence: interference over size over element
    /// type — the reason closest to an actual merge wins).
    pub rejected: Vec<(Var, MergeReject)>,
    /// Executor-facing records, one per merge or carried release.
    pub records: Vec<MergeRecord>,
}

/// One block's claim on (part of) a host block: the top-level statement
/// interval over which its tenants are live, and — when every tenant's
/// index function is a single LMAD — the footprints it touches.
struct Occupancy {
    first: usize,
    /// `usize::MAX` when a tenant backs a program result.
    last: usize,
    /// `None` when the block is opaque (touched through an alias class —
    /// a loop initializer, a nested tenant) or some tenant footprint is
    /// not a single LMAD; such an occupancy can only coexist with others
    /// by disjoint lifetimes.
    lmads: Option<Vec<Lmad>>,
}

/// One candidate allocation, in linear-scan order.
struct Cand {
    var: Var,
    elem: ElemType,
    size: Poly,
    /// Top-level index of the `alloc` statement: a color's representative
    /// must be allocated before any merged member first writes it.
    alloc_idx: usize,
    occ: Occupancy,
}

/// One color of the interference graph: the representative allocation
/// that survives, and the scan indices of every member sharing it.
struct Color {
    rep: Var,
    elem: ElemType,
    /// Current size of the representative's allocation — grows under
    /// `coloring` when a provably larger member joins.
    size: Poly,
    alloc_idx: usize,
    members: Vec<usize>,
}

/// How one victim/resident occupancy comparison came out — one edge (or
/// non-edge) of the interference graph.
enum Fit {
    /// Disjoint live ranges: compatible with no runtime obligation.
    Lifetimes,
    /// Overlapping live ranges, provably disjoint footprints: compatible,
    /// carrying the pairs to re-prove at runtime.
    Footprints(Vec<(Lmad, Lmad)>),
    Interferes,
}

/// Run block merging over a memory-annotated program. `coloring` enables
/// the whole-program extensions (host growth, carried-release coloring of
/// loop ping-pong memory); off, the pass degrades to the legacy behavior.
/// `force_unsafe` (test-only) pushes interference-rejected candidates
/// into a host anyway, so the checked VM's merge cross-check can be shown
/// to fire.
pub fn merge_blocks(
    prog: &mut Program,
    env: &Env,
    coloring: bool,
    force_unsafe: bool,
) -> MergeReport {
    let mut report = MergeReport::default();
    color_toplevel(prog, env, coloring, force_unsafe, &mut report);
    if coloring {
        schedule_carried_releases(prog, &mut report);
    }
    report
}

/// Phase 1: whole-program coloring of the top-level allocations.
fn color_toplevel(
    prog: &mut Program,
    env: &Env,
    coloring: bool,
    force_unsafe: bool,
    report: &mut MergeReport,
) {
    // Candidate allocations: top-level `alloc` statements, in order.
    let allocs: Vec<(usize, Var, ElemType, Poly)> = prog
        .body
        .stms
        .iter()
        .enumerate()
        .filter_map(|(i, stm)| match &stm.exp {
            Exp::Alloc { elem, size } => Some((i, stm.pat[0].var, *elem, size.clone())),
            _ => None,
        })
        .collect();
    if allocs.len() < 2 {
        return;
    }

    // A block *escapes* only when its variable is itself a program
    // result: the program hands the raw block to the caller, so renaming
    // it would change the interface. Loop-carried blocks are handled by
    // the alias classes below instead of escaping wholesale.
    let escaping: HashSet<Var> = prog.body.result.iter().copied().collect();

    // Bindings at every depth (for resolving uses to blocks), and alias
    // classes (for resolving loop-carried memory back to the candidate
    // allocations it may name at runtime). Class member lists are built
    // from the ordered candidate list — never from a hash set — so the
    // liveness scan, the coloring, the remark stream and the golden
    // snapshots are identical across runs.
    let mut bindings: HashMap<Var, MemBinding> = HashMap::new();
    collect_bindings(&prog.body, &mut bindings);
    let mut aliases = MemAliases::build(&prog.body);
    let mut class: HashMap<Var, Vec<Var>> = HashMap::new();
    for (_, m, _, _) in &allocs {
        class.entry(aliases.find(*m)).or_default().push(*m);
    }
    let mut resolve = |b: Var| -> Vec<Var> {
        match class.get(&aliases.find(b)) {
            Some(cs) => cs.clone(),
            None => Vec::new(),
        }
    };

    // Direct top-level tenants, per block: the bindings whose footprints
    // we can enumerate symbolically.
    let mut tenants: HashMap<Var, Vec<(Var, MemBinding)>> = HashMap::new();
    for stm in &prog.body.stms {
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                tenants
                    .entry(mb.block)
                    .or_default()
                    .push((pe.var, mb.clone()));
            }
        }
    }

    // Live interval of each candidate block, at top-level statement
    // granularity: statement `i` touches block `M` when it binds an array
    // into `M`, uses a variable bound in `M`, or names (directly or
    // through an alias class — a loop initializer, a nested tenant) a mem
    // var that may be `M` at runtime. Any touch *through* an alias is
    // opaque: the footprints written through it are unknown, so the block
    // can only share by disjoint lifetimes.
    let mut first: HashMap<Var, usize> = HashMap::new();
    let mut last: HashMap<Var, usize> = HashMap::new();
    let mut opaque: HashSet<Var> = HashSet::new();
    let touch =
        |m: Var, i: usize, first: &mut HashMap<Var, usize>, last: &mut HashMap<Var, usize>| {
            first.entry(m).and_modify(|f| *f = (*f).min(i)).or_insert(i);
            last.entry(m).and_modify(|l| *l = (*l).max(i)).or_insert(i);
        };
    for (i, stm) in prog.body.stms.iter().enumerate() {
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                for c in resolve(mb.block) {
                    touch(c, i, &mut first, &mut last);
                    if c != mb.block {
                        opaque.insert(c);
                    }
                }
            }
        }
        for u in stm.exp.free_vars() {
            if let Some(mb) = bindings.get(&u) {
                for c in resolve(mb.block) {
                    touch(c, i, &mut first, &mut last);
                    if c != mb.block {
                        opaque.insert(c);
                    }
                }
            } else {
                // A mem var used as an operand (a loop initializer): the
                // expression may write through it with footprints this
                // pass never sees.
                for c in resolve(u) {
                    touch(c, i, &mut first, &mut last);
                    opaque.insert(c);
                }
            }
        }
        let mut deep = Vec::new();
        deep_blocks(&stm.exp, &mut deep);
        for b in deep {
            for c in resolve(b) {
                touch(c, i, &mut first, &mut last);
                opaque.insert(c);
            }
        }
    }
    for r in &prog.body.result {
        let backing = bindings.get(r).map(|mb| mb.block).unwrap_or(*r);
        for c in resolve(backing) {
            last.insert(c, usize::MAX);
            if c != backing {
                opaque.insert(c);
            }
        }
    }

    // Blocks accessed through runtime indices join the opaque set: their
    // footprints cannot be enumerated, so they can share only by disjoint
    // lifetimes — and when overlapping lifetimes sink them, the reject is
    // reported as `RuntimeIndexed` rather than a generic interference.
    let mut runtime_indexed: HashSet<Var> = HashSet::new();
    let mut ri_arrays = Vec::new();
    runtime_indexed_arrays(&prog.body, &mut ri_arrays);
    for a in ri_arrays {
        if let Some(mb) = bindings.get(&a) {
            for c in resolve(mb.block) {
                runtime_indexed.insert(c);
                opaque.insert(c);
            }
        }
    }

    // Where each top-level scalar is bound, for the growth legality check:
    // a host may only grow to a size whose every variable is in scope at
    // the host's `alloc` (a program parameter, or bound strictly before).
    let param_vars: HashSet<Var> = prog.params.iter().map(|(v, _)| *v).collect();
    let mut bound_at: HashMap<Var, usize> = HashMap::new();
    for (i, stm) in prog.body.stms.iter().enumerate() {
        for pe in &stm.pat {
            bound_at.entry(pe.var).or_insert(i);
        }
    }
    let growable = |size: &Poly, host_alloc_idx: usize| -> bool {
        size.vars()
            .iter()
            .all(|v| param_vars.contains(v) || bound_at.get(v).is_some_and(|&i| i < host_alloc_idx))
    };

    // Linear-scan order: first use (allocation statements are hoisted, so
    // their textual order says nothing about liveness; first-use order
    // lets each block try the colors whose tenants came before it).
    let mut ordered = allocs.clone();
    ordered.sort_by_key(|(idx, m, _, _)| (first.get(m).copied().unwrap_or(usize::MAX), *idx));

    // Scan-ordered candidates, with occupancies. Escaping or dead blocks
    // take no part in the graph.
    let mut cands: Vec<Option<Cand>> = Vec::with_capacity(ordered.len());
    for (alloc_idx, m, elem, size) in &ordered {
        if escaping.contains(m) {
            report.rejected.push((*m, MergeReject::Escapes));
            cands.push(None);
            continue;
        }
        if !first.contains_key(m) {
            cands.push(None); // dead block; cleanup removes it
            continue;
        }
        let ts = tenants.get(m).map(Vec::as_slice).unwrap_or(&[]);
        let lmads = if opaque.contains(m) || ts.is_empty() {
            None
        } else {
            ts.iter()
                .map(|(_, mb)| mb.ixfn.as_single().cloned())
                .collect()
        };
        cands.push(Some(Cand {
            var: *m,
            elem: *elem,
            size: size.clone(),
            alloc_idx: *alloc_idx,
            occ: Occupancy {
                first: first.get(m).copied().unwrap_or(usize::MAX),
                last: last.get(m).copied().unwrap_or(0),
                lmads,
            },
        }));
    }

    // The full interference graph: every candidate pair compared once,
    // `fits[i][j]` holding the edge between scan-later `i` (as victim)
    // and scan-earlier `j` (as resident).
    let fits: Vec<Vec<Fit>> = (0..cands.len())
        .map(|i| {
            (0..i)
                .map(|j| match (&cands[i], &cands[j]) {
                    (Some(v), Some(r)) => occupancy_fit(&v.occ, &r.occ, env),
                    _ => Fit::Interferes,
                })
                .collect()
        })
        .collect();

    // Assign each candidate the first color it does not interfere with.
    // A placement is (color index, footprint pairs owed to checked mode,
    // provably-larger member size forcing host growth).
    type Placement = (usize, Vec<(Lmad, Lmad)>, Option<Poly>);
    let mut colors: Vec<Color> = Vec::new();
    let mut rename: HashMap<Var, Var> = HashMap::new();
    for i in 0..cands.len() {
        let Some(cand) = &cands[i] else { continue };
        let mut saw_interference = false;
        let mut saw_size_fail = false;
        let mut colors_tried = 0usize;
        let mut chosen: Option<Placement> = None;
        let mut forced_color: Option<usize> = None;
        for (ci, color) in colors.iter().enumerate() {
            colors_tried += 1;
            if color.elem != cand.elem {
                continue;
            }
            // The color's `alloc` must execute before the member's tenants
            // first write into it.
            if color.alloc_idx > cand.occ.first {
                saw_interference = true;
                continue;
            }
            // The member's footprints must fit inside the color's block —
            // or, under `coloring`, the block grows to the member's
            // provably larger size when that size is in scope at the
            // representative's `alloc`.
            let grow = if env.prove_le(&cand.size, &color.size) {
                None
            } else if coloring
                && env.prove_le(&color.size, &cand.size)
                && growable(&cand.size, color.alloc_idx)
            {
                Some(cand.size.clone())
            } else {
                saw_size_fail = true;
                continue;
            };
            let mut pairs: Vec<(Lmad, Lmad)> = Vec::new();
            let mut compatible = true;
            for &j in &color.members {
                match &fits[i][j] {
                    Fit::Lifetimes => {}
                    Fit::Footprints(p) => pairs.extend(p.iter().cloned()),
                    Fit::Interferes => {
                        compatible = false;
                        break;
                    }
                }
            }
            if compatible {
                chosen = Some((ci, pairs, grow));
                break;
            }
            saw_interference = true;
            if forced_color.is_none() && force_unsafe {
                // Forcing needs enumerable footprints on both sides, so
                // the checked VM has pairs to refute.
                let enumerable = cand.occ.lmads.is_some()
                    && color
                        .members
                        .iter()
                        .all(|&j| cands[j].as_ref().is_some_and(|c| c.occ.lmads.is_some()));
                if enumerable {
                    forced_color = Some(ci);
                }
            }
        }
        if let Some((ci, pairs, grow)) = chosen {
            let host = colors[ci].rep;
            if let Some(to) = grow {
                report.grown.push(HostGrowth {
                    host,
                    member: cand.var,
                    from: colors[ci].size.clone(),
                    to: to.clone(),
                });
                colors[ci].size = to;
            }
            report.merged.push(MergeOutcome {
                host,
                victim: cand.var,
                by_footprint: !pairs.is_empty(),
                forced: false,
            });
            report.records.push(MergeRecord::Share {
                host,
                victim: cand.var,
                pairs,
            });
            rename.insert(cand.var, host);
            colors[ci].members.push(i);
            continue;
        }
        if let Some(ci) = forced_color {
            let host = colors[ci].rep;
            let victim_lmads = cand
                .occ
                .lmads
                .clone()
                .expect("forced occupancy is enumerable");
            let pairs: Vec<(Lmad, Lmad)> = colors[ci]
                .members
                .iter()
                .flat_map(|&j| {
                    cands[j]
                        .as_ref()
                        .and_then(|c| c.occ.lmads.as_ref())
                        .expect("forced host is enumerable")
                })
                .flat_map(|rl| victim_lmads.iter().map(move |vl| (vl.clone(), rl.clone())))
                .collect();
            report.merged.push(MergeOutcome {
                host,
                victim: cand.var,
                by_footprint: true,
                forced: true,
            });
            report.records.push(MergeRecord::Share {
                host,
                victim: cand.var,
                pairs,
            });
            rename.insert(cand.var, host);
            colors[ci].members.push(i);
            continue;
        }
        if colors_tried > 0 {
            let why = if saw_interference && runtime_indexed.contains(&cand.var) {
                MergeReject::RuntimeIndexed
            } else if saw_interference {
                MergeReject::Interference
            } else if saw_size_fail {
                MergeReject::SizeNotProvable
            } else {
                MergeReject::ElemMismatch
            };
            report.rejected.push((cand.var, why));
        }
        colors.push(Color {
            rep: cand.var,
            elem: cand.elem,
            size: cand.size.clone(),
            alloc_idx: cand.alloc_idx,
            members: vec![i],
        });
    }

    // Apply host growths to the IR: the representative's `alloc` takes the
    // color's final (largest) size.
    for color in &colors {
        if let Exp::Alloc { size, .. } = &mut prog.body.stms[color.alloc_idx].exp {
            if *size != color.size {
                *size = color.size.clone();
            }
        }
    }

    if !rename.is_empty() {
        rewrite_blocks(prog, &rename);
    }
}

/// Phase 2 (under `coloring`): color loop-carried ping-pong memory. For
/// every top-level loop mem parameter whose body yields a fresh in-body
/// allocation, the incoming block is dead once its last in-body use has
/// passed — provided nothing outside the iteration can still reach the
/// blocks the parameter cycles through. Each qualifying parameter gets a
/// [`MergeRecord::CarriedRelease`] with its own runtime color.
fn schedule_carried_releases(prog: &Program, report: &mut MergeReport) {
    let mut bindings: HashMap<Var, MemBinding> = HashMap::new();
    collect_bindings(&prog.body, &mut bindings);
    let mut next_color: u32 = 0;
    for (loop_idx, stm) in prog.body.stms.iter().enumerate() {
        let Exp::Loop {
            params,
            inits,
            body,
            ..
        } = &stm.exp
        else {
            continue;
        };
        let mut body_bindings: HashMap<Var, MemBinding> = HashMap::new();
        collect_bindings(body, &mut body_bindings);
        for (k, pp) in params.iter().enumerate() {
            if !matches!(pp.ty, Type::Mem) {
                continue;
            }
            let m = pp.var;
            let Some(&y) = body.result.get(k) else {
                continue;
            };
            if y == m {
                continue; // the block survives the iteration unchanged
            }
            // The yield block must be a fresh allocation of the body
            // itself — the ping-pong shape. Nested existential results
            // keep the historical conservative treatment.
            let Some(a_idx) = body.stms.iter().position(|s| {
                matches!(s.exp, Exp::Alloc { .. }) && s.pat.first().map(|pe| pe.var) == Some(y)
            }) else {
                continue;
            };
            let Some(&init_m) = inits.get(k) else {
                continue;
            };

            // Arrays living in the carried block inside one iteration: the
            // loop's own array parameters annotated `@ m`, plus any body
            // binding into `m`.
            let mut carried: HashSet<Var> = HashSet::new();
            carried.insert(m);
            for pp2 in params {
                if pp2.mem.as_ref().is_some_and(|mb| mb.block == m) {
                    carried.insert(pp2.var);
                }
            }
            for s in &body.stms {
                for pe in &s.pat {
                    if pe.mem.as_ref().is_some_and(|mb| mb.block == m) {
                        carried.insert(pe.var);
                    }
                }
            }
            // The carried block must be dead at the yield: no other body
            // result may still live in it.
            if body
                .result
                .iter()
                .enumerate()
                .any(|(k2, r)| k2 != k && (carried.contains(r) || *r == m))
            {
                continue;
            }
            // Iteration 0 frees the *initial* block, so nothing bound in
            // it may outlive the loop's first iteration: no in-body or
            // parameter binding may name it directly…
            if body_bindings.values().any(|mb| mb.block == init_m)
                || params
                    .iter()
                    .any(|pp2| pp2.mem.as_ref().is_some_and(|mb| mb.block == init_m))
            {
                continue;
            }
            // …no outer array living in it may be read inside the body…
            let outer: Vec<Var> = {
                let mut vs: Vec<Var> = bindings
                    .iter()
                    .filter(|(v, mb)| mb.block == init_m && !body_bindings.contains_key(*v))
                    .map(|(v, _)| *v)
                    .collect();
                vs.sort();
                vs
            };
            let body_reads_init = body.stms.iter().any(|s| {
                let mut deep = Vec::new();
                deep_blocks(&s.exp, &mut deep);
                s.exp
                    .free_vars()
                    .iter()
                    .any(|v| *v == init_m || outer.binary_search(v).is_ok())
                    || deep.contains(&init_m)
            });
            if body_reads_init {
                continue;
            }
            // …and nothing after the loop may reach it.
            let used_later = prog.body.stms.iter().skip(loop_idx + 1).any(|s| {
                let mut deep = Vec::new();
                deep_blocks(&s.exp, &mut deep);
                s.exp
                    .free_vars()
                    .iter()
                    .any(|v| *v == init_m || outer.binary_search(v).is_ok())
                    || deep.contains(&init_m)
                    || s.pat
                        .iter()
                        .any(|pe| pe.mem.as_ref().is_some_and(|mb| mb.block == init_m))
            }) || prog
                .body
                .result
                .iter()
                .any(|r| *r == init_m || outer.binary_search(r).is_ok());
            if used_later {
                continue;
            }

            // Release point: after the last body statement touching the
            // carried block or its arrays — and no earlier than the yield
            // `alloc`, whose block the executor's identity guard reads.
            let mut release_after = a_idx;
            for (i, s) in body.stms.iter().enumerate() {
                let mut deep = Vec::new();
                deep_blocks(&s.exp, &mut deep);
                let touched = s.exp.free_vars().iter().any(|v| carried.contains(v))
                    || deep.contains(&m)
                    || s.pat
                        .iter()
                        .any(|pe| pe.mem.as_ref().is_some_and(|mb| mb.block == m));
                if touched {
                    release_after = release_after.max(i);
                }
            }
            let Some(anchor) = body.stms[release_after].pat.first().map(|pe| pe.var) else {
                continue;
            };
            report.records.push(MergeRecord::CarriedRelease {
                loop_mem: m,
                yield_mem: y,
                after_stm: anchor,
                color: next_color,
            });
            next_color += 1;
        }
    }
}

/// Compare a victim occupancy against one resident occupancy of a host.
fn occupancy_fit(victim: &Occupancy, resident: &Occupancy, env: &Env) -> Fit {
    if victim.last < resident.first || resident.last < victim.first {
        return Fit::Lifetimes;
    }
    let (Some(va), Some(ra)) = (&victim.lmads, &resident.lmads) else {
        return Fit::Interferes;
    };
    let mut pairs = Vec::with_capacity(va.len() * ra.len());
    for v in va {
        for r in ra {
            if !non_overlap(v, r, env) {
                return Fit::Interferes;
            }
            pairs.push((v.clone(), r.clone()));
        }
    }
    Fit::Footprints(pairs)
}

/// Rewrite every memory binding whose block was merged away onto its
/// host, at every nesting depth (patterns and loop merge parameters) —
/// the same walk `collect_bindings` performs, mutably.
fn rewrite_blocks(prog: &mut Program, rename: &HashMap<Var, Var>) {
    rewrite_block(&mut prog.body, rename);
}

fn rewrite_block(block: &mut Block, rename: &HashMap<Var, Var>) {
    for stm in &mut block.stms {
        for pe in &mut stm.pat {
            if let Some(mb) = &mut pe.mem {
                if let Some(host) = rename.get(&mb.block) {
                    mb.block = *host;
                }
            }
        }
        match &mut stm.exp {
            Exp::If { then_b, else_b, .. } => {
                rewrite_block(then_b, rename);
                rewrite_block(else_b, rename);
            }
            Exp::Loop {
                params,
                inits,
                body,
                ..
            } => {
                for pp in params {
                    if let Some(mb) = &mut pp.mem {
                        if let Some(host) = rename.get(&mb.block) {
                            mb.block = *host;
                        }
                    }
                }
                for init in inits {
                    if let Some(host) = rename.get(init) {
                        *init = *host;
                    }
                }
                rewrite_block(body, rename);
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &mut m.body {
                    rewrite_block(body, rename);
                }
            }
            _ => {}
        }
    }
    // A vacated block's variable can flow out of a nested block as an
    // existential-memory result; the program-level result never names a
    // victim (such blocks are rejected as `Escapes`).
    for r in &mut block.result {
        if let Some(host) = rename.get(r) {
            *r = *host;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remark::MergeReject;
    use crate::{compile, Options};
    use arraymem_ir::{Builder, PatElem, ScalarExp, Stm};
    use arraymem_lmad::{Dim, IndexFn};
    use arraymem_symbolic::sym;

    fn p(v: Var) -> Poly {
        Poly::var(v)
    }

    fn count_allocs(block: &Block) -> usize {
        block
            .stms
            .iter()
            .filter(|s| matches!(s.exp, Exp::Alloc { .. }))
            .count()
    }

    fn share(rec: &MergeRecord) -> (&Var, &Var, &Vec<(Lmad, Lmad)>) {
        match rec {
            MergeRecord::Share {
                host,
                victim,
                pairs,
            } => (host, victim, pairs),
            other => panic!("expected a Share record, got {other:?}"),
        }
    }

    /// A three-stage chain `a = iota n; b = copy a; c = copy b` gives the
    /// last allocation a live range disjoint from the first's: `c` merges
    /// into `a`'s block with no footprint obligations (empty pairs).
    #[test]
    fn lifetime_disjoint_chain_merges() {
        let mut bld = Builder::new("chain");
        let n = bld.scalar_param("ch_n", ElemType::I64);
        let mut body = bld.block();
        let a = body.iota("ch_a", p(n));
        let b = body.copy("ch_b", a);
        let c = body.copy("ch_c", b);
        let blk = body.finish(vec![c]);
        let prog = bld.finish(blk);

        let mut env = Env::new();
        env.assume_ge(n, 1);
        // Short-circuiting off, so both copies (and all three blocks)
        // survive to the merge pass.
        let opts = Options {
            merge: true,
            ..Options::default()
        }
        .with_env(env);
        let compiled = compile(&prog, &opts).expect("compile");

        assert_eq!(compiled.report.merges.len(), 1, "exactly one merge");
        let (host, victim, pairs) = share(&compiled.report.merges[0]);
        assert!(
            pairs.is_empty(),
            "lifetime-justified merge carries no footprint pairs"
        );
        assert_ne!(host, victim);
        // Cleanup collected the vacated alloc: 2 blocks serve 3 arrays.
        assert_eq!(count_allocs(&compiled.program.body), 2);
    }

    /// Hand-built memory-annotated program where the victim's tenant sits
    /// at offset `n` of a `2n` host whose resident occupies `[0, n)`, with
    /// overlapping live ranges: the merge must be footprint-justified and
    /// record the (victim, resident) pair for checked mode.
    #[test]
    fn footprint_disjoint_merge_records_pairs() {
        let n = sym("fpm_n");
        let blk_a = sym("fpm_A");
        let blk_b = sym("fpm_B");
        let x = sym("fpm_x");
        let y = sym("fpm_y");
        let sx = sym("fpm_sx");
        let sy = sym("fpm_sy");

        let size = Poly::var(n) * Poly::constant(2);
        let arr_ty = Type::array(ElemType::F32, vec![Poly::var(n)]);
        let lmad_lo = Lmad::new(0, vec![Dim::new(Poly::var(n), 1)]);
        let lmad_hi = Lmad::new(Poly::var(n), vec![Dim::new(Poly::var(n), 1)]);

        let alloc = |blk: Var| Stm {
            pat: vec![PatElem::new(blk, Type::Mem)],
            exp: Exp::Alloc {
                elem: ElemType::F32,
                size: size.clone(),
            },
        };
        let scratch_in = |v: Var, blk: Var, l: Lmad| Stm {
            pat: vec![PatElem {
                var: v,
                ty: arr_ty.clone(),
                mem: Some(MemBinding {
                    block: blk,
                    ixfn: IndexFn::from_lmad(l),
                }),
            }],
            exp: Exp::Scratch {
                elem: ElemType::F32,
                shape: vec![Poly::var(n)],
            },
        };
        let read0 = |s: Var, arr: Var| Stm {
            pat: vec![PatElem::new(s, Type::Scalar(ElemType::F32))],
            exp: Exp::Scalar(ScalarExp::Index(arr, vec![ScalarExp::i64(0)])),
        };

        let mut prog = Program {
            name: "fpmerge".into(),
            params: vec![(n, Type::Scalar(ElemType::I64))],
            pipeline_fingerprint: 0,
            body: Block {
                stms: vec![
                    alloc(blk_a),
                    alloc(blk_b),
                    // x lives in A at [0, n); y in B at [n, 2n). Their
                    // live ranges overlap (both read by the tail), so
                    // only footprint disjointness can justify sharing.
                    scratch_in(x, blk_a, lmad_lo),
                    scratch_in(y, blk_b, lmad_hi),
                    read0(sx, x),
                    read0(sy, y),
                ],
                result: vec![sx, sy],
            },
        };
        let mut env = Env::new();
        env.assume_ge(n, 1);

        let report = merge_blocks(&mut prog, &env, false, false);
        assert_eq!(report.merged.len(), 1);
        assert!(report.merged[0].by_footprint);
        assert!(!report.merged[0].forced);
        assert_eq!(report.records.len(), 1);
        let (host, victim, pairs) = share(&report.records[0]);
        assert_eq!(*host, blk_a);
        assert_eq!(*victim, blk_b);
        assert_eq!(pairs.len(), 1, "one (victim, resident) pair");
        // The rewrite moved y's binding onto the host block.
        let y_mb = prog.body.stms[3].pat[0].mem.as_ref().expect("y has mem");
        assert_eq!(y_mb.block, blk_a);
    }

    /// A lone host of a different element type: the only reject reason
    /// left standing is the element mismatch.
    #[test]
    fn elem_mismatch_is_rejected() {
        let mut bld = Builder::new("elems");
        let n = bld.scalar_param("em_n", ElemType::I64);
        let mut body = bld.block();
        let a = body.iota("em_a", p(n)); // i64 block
        let s = body.scalar(
            "em_s",
            ElemType::I64,
            ScalarExp::Index(a, vec![ScalarExp::i64(0)]),
        );
        // f32 block, live only after `a` is dead — lifetimes are fine,
        // the element types are not.
        let w = body.scratch("em_w", ElemType::F32, vec![p(n)]);
        let ws = body.scalar(
            "em_ws",
            ElemType::F32,
            ScalarExp::Index(w, vec![ScalarExp::var(s)]),
        );
        let blk = body.finish(vec![ws]);
        let prog = bld.finish(blk);

        let mut env = Env::new();
        env.assume_ge(n, 1);
        let opts = Options {
            merge: true,
            ..Options::default()
        }
        .with_env(env);
        let compiled = compile(&prog, &opts).expect("compile");

        assert!(compiled.report.merges.is_empty());
        let rejects: Vec<&MergeReject> = compiled
            .compile_report
            .remarks
            .iter()
            .filter_map(|r| match &r.kind {
                crate::remark::RemarkKind::MergeRejected(why) => Some(why),
                _ => None,
            })
            .collect();
        assert!(
            rejects
                .iter()
                .any(|w| matches!(w, MergeReject::ElemMismatch)),
            "expected an ElemMismatch reject, got {rejects:?}"
        );
    }

    /// Under `coloring`, a small-then-large allocation order no longer
    /// blocks sharing: the host's `alloc` grows to the later member's
    /// provably larger size (which is in scope at the host's `alloc`) and
    /// the rewritten IR carries the grown size.
    #[test]
    fn host_grows_to_larger_member() {
        let mut bld = Builder::new("grow");
        let n = bld.scalar_param("gr_n", ElemType::I64);
        let mut body = bld.block();
        // a: n elements; b: 2n elements, live only after `a` is dead.
        let a = body.iota("gr_a", p(n));
        let s = body.scalar(
            "gr_s",
            ElemType::I64,
            ScalarExp::Index(a, vec![ScalarExp::i64(0)]),
        );
        let b = body.iota("gr_b", p(n) * Poly::constant(2));
        let t = body.scalar(
            "gr_t",
            ElemType::I64,
            ScalarExp::Index(b, vec![ScalarExp::var(s)]),
        );
        let blk = body.finish(vec![t]);
        let prog = bld.finish(blk);

        let mut env = Env::new();
        env.assume_ge(n, 1);

        // Legacy greedy: the larger block cannot fit into the earlier
        // smaller host — no merge.
        let opts_off = Options {
            merge: true,
            coloring: false,
            ..Options::default()
        }
        .with_env(env.clone());
        let off = compile(&prog, &opts_off).expect("compile");
        assert!(
            off.report.merges.is_empty(),
            "greedy first-fit cannot host a larger member"
        );

        // Coloring: the host grows.
        let opts_on = Options {
            merge: true,
            coloring: true,
            ..Options::default()
        }
        .with_env(env);
        let on = compile(&prog, &opts_on).expect("compile");
        assert_eq!(on.report.merges.len(), 1, "coloring merges via growth");
        assert_eq!(count_allocs(&on.program.body), 1, "one block serves both");
        let grown = on
            .compile_report
            .remarks
            .iter()
            .any(|r| matches!(r.kind, crate::remark::RemarkKind::HostGrown));
        assert!(grown, "a HostGrown remark is emitted");
        // The surviving alloc carries the grown (2n) size.
        let alloc_size = on
            .program
            .body
            .stms
            .iter()
            .find_map(|s| match &s.exp {
                Exp::Alloc { size, .. } => Some(size.clone()),
                _ => None,
            })
            .expect("surviving alloc");
        assert_eq!(alloc_size, p(n) * Poly::constant(2));
    }

    /// Hand-built top-level loop that ping-pongs its carried block (the
    /// body allocates a fresh yield block every iteration): coloring
    /// schedules a per-iteration release of the incoming block; without
    /// coloring the record is absent.
    #[test]
    fn carried_pingpong_gets_release_record() {
        let n = sym("cr_n");
        let steps = sym("cr_steps");
        let blk0 = sym("cr_blk0"); // initial carried block
        let t0 = sym("cr_t0"); // array living in blk0
        let m = sym("cr_m"); // loop mem param
        let t = sym("cr_t"); // loop array param @ m
        let y = sym("cr_y"); // per-iteration yield block
        let t1 = sym("cr_t1"); // fresh array @ y
        let out_m = sym("cr_om");
        let out_t = sym("cr_ot");
        let idx = sym("cr_i");
        let sr = sym("cr_sr");

        let arr_ty = Type::array(ElemType::F32, vec![Poly::var(n)]);
        let lmad = Lmad::new(0, vec![Dim::new(Poly::var(n), 1)]);
        let mem_pat = |v: Var| PatElem::new(v, Type::Mem);
        let arr_pat = |v: Var, blk: Var| PatElem {
            var: v,
            ty: arr_ty.clone(),
            mem: Some(MemBinding {
                block: blk,
                ixfn: IndexFn::from_lmad(lmad.clone()),
            }),
        };

        let body = Block {
            stms: vec![
                Stm {
                    pat: vec![mem_pat(y)],
                    exp: Exp::Alloc {
                        elem: ElemType::F32,
                        size: Poly::var(n),
                    },
                },
                Stm {
                    pat: vec![arr_pat(t1, y)],
                    exp: Exp::Copy(t),
                },
                // A read of the carried array *after* t1 is built: the
                // release must anchor here, not at the copy.
                Stm {
                    pat: vec![PatElem::new(sr, Type::Scalar(ElemType::F32))],
                    exp: Exp::Scalar(ScalarExp::Index(t, vec![ScalarExp::i64(0)])),
                },
            ],
            result: vec![y, t1],
        };
        let prog_body = Block {
            stms: vec![
                Stm {
                    pat: vec![mem_pat(blk0)],
                    exp: Exp::Alloc {
                        elem: ElemType::F32,
                        size: Poly::var(n),
                    },
                },
                Stm {
                    pat: vec![arr_pat(t0, blk0)],
                    exp: Exp::Scratch {
                        elem: ElemType::F32,
                        shape: vec![Poly::var(n)],
                    },
                },
                Stm {
                    pat: vec![mem_pat(out_m), arr_pat(out_t, out_m)],
                    exp: Exp::Loop {
                        params: vec![mem_pat(m), arr_pat(t, m)],
                        inits: vec![blk0, t0],
                        index: idx,
                        count: Poly::var(steps),
                        body,
                    },
                },
            ],
            result: vec![out_t],
        };
        let prog = Program {
            name: "pingpong".into(),
            params: vec![
                (n, Type::Scalar(ElemType::I64)),
                (steps, Type::Scalar(ElemType::I64)),
            ],
            pipeline_fingerprint: 0,
            body: prog_body,
        };
        let mut env = Env::new();
        env.assume_ge(n, 1);

        let mut off = prog.clone();
        let rep_off = merge_blocks(&mut off, &env, false, false);
        assert!(
            !rep_off
                .records
                .iter()
                .any(|r| matches!(r, MergeRecord::CarriedRelease { .. })),
            "no carried release without coloring"
        );

        let mut on = prog.clone();
        let rep_on = merge_blocks(&mut on, &env, true, false);
        let carried: Vec<_> = rep_on
            .records
            .iter()
            .filter_map(|r| match r {
                MergeRecord::CarriedRelease {
                    loop_mem,
                    yield_mem,
                    after_stm,
                    color,
                } => Some((*loop_mem, *yield_mem, *after_stm, *color)),
                _ => None,
            })
            .collect();
        assert_eq!(carried.len(), 1, "one carried release: {rep_on:?}");
        let (lm, ym, anchor, color) = carried[0];
        assert_eq!(lm, m);
        assert_eq!(ym, y);
        assert_eq!(anchor, sr, "release anchors after the last carried read");
        assert_eq!(color, 0);
    }

    /// The ping-pong analysis bails when the iteration still yields an
    /// array living in the incoming block.
    #[test]
    fn carried_release_bails_when_block_still_yielded() {
        let n = sym("cb_n");
        let steps = sym("cb_steps");
        let blk0 = sym("cb_blk0");
        let t0 = sym("cb_t0");
        let m = sym("cb_m");
        let t = sym("cb_t");
        let y = sym("cb_y");
        let t1 = sym("cb_t1");
        let out_m = sym("cb_om");
        let out_t = sym("cb_ot");
        let out_m2 = sym("cb_om2");
        let out_t2 = sym("cb_ot2");
        let idx = sym("cb_i");

        let arr_ty = Type::array(ElemType::F32, vec![Poly::var(n)]);
        let lmad = Lmad::new(0, vec![Dim::new(Poly::var(n), 1)]);
        let mem_pat = |v: Var| PatElem::new(v, Type::Mem);
        let arr_pat = |v: Var, blk: Var| PatElem {
            var: v,
            ty: arr_ty.clone(),
            mem: Some(MemBinding {
                block: blk,
                ixfn: IndexFn::from_lmad(lmad.clone()),
            }),
        };

        // The loop yields the *old* array (still @ m) in a second merge
        // slot: the incoming block is not dead at the yield.
        let body = Block {
            stms: vec![
                Stm {
                    pat: vec![mem_pat(y)],
                    exp: Exp::Alloc {
                        elem: ElemType::F32,
                        size: Poly::var(n),
                    },
                },
                Stm {
                    pat: vec![arr_pat(t1, y)],
                    exp: Exp::Copy(t),
                },
            ],
            result: vec![y, t1, t],
        };
        let prog_body = Block {
            stms: vec![
                Stm {
                    pat: vec![mem_pat(blk0)],
                    exp: Exp::Alloc {
                        elem: ElemType::F32,
                        size: Poly::var(n),
                    },
                },
                Stm {
                    pat: vec![arr_pat(t0, blk0)],
                    exp: Exp::Scratch {
                        elem: ElemType::F32,
                        shape: vec![Poly::var(n)],
                    },
                },
                Stm {
                    pat: vec![
                        mem_pat(out_m),
                        arr_pat(out_t, out_m),
                        arr_pat(out_t2, out_m2),
                    ],
                    exp: Exp::Loop {
                        params: vec![mem_pat(m), arr_pat(t, m), arr_pat(out_t2, m)],
                        inits: vec![blk0, t0, t0],
                        index: idx,
                        count: Poly::var(steps),
                        body,
                    },
                },
            ],
            result: vec![out_t],
        };
        let prog = Program {
            name: "pingpong_bail".into(),
            params: vec![
                (n, Type::Scalar(ElemType::I64)),
                (steps, Type::Scalar(ElemType::I64)),
            ],
            pipeline_fingerprint: 0,
            body: prog_body,
        };
        let mut env = Env::new();
        env.assume_ge(n, 1);

        let mut on = prog.clone();
        let rep = merge_blocks(&mut on, &env, true, false);
        assert!(
            !rep.records
                .iter()
                .any(|r| matches!(r, MergeRecord::CarriedRelease { .. })),
            "carried release must bail while the block is still yielded: {rep:?}"
        );
    }

    /// Satellite: the coloring's decisions (records, remark-visible
    /// outcomes, rejects) are bit-identical across repeated runs — no
    /// hash-map iteration order leaks into the scan.
    #[test]
    fn coloring_is_deterministic_across_runs() {
        let mut bld = Builder::new("det");
        let n = bld.scalar_param("dt_n", ElemType::I64);
        let mut body = bld.block();
        // A chain of six blocks with staggered, partly overlapping live
        // ranges: several legal colorings exist, so any order instability
        // would surface as a different decision stream.
        let a = body.iota("dt_a", p(n));
        let b = body.copy("dt_b", a);
        let c = body.copy("dt_c", b);
        let d = body.copy("dt_d", c);
        let e = body.copy("dt_e", d);
        let f = body.copy("dt_f", e);
        let blk = body.finish(vec![f]);
        let prog = bld.finish(blk);

        let mut env = Env::new();
        env.assume_ge(n, 1);

        let mut streams: Vec<String> = Vec::new();
        for _ in 0..5 {
            let opts = Options {
                merge: true,
                coloring: true,
                ..Options::default()
            }
            .with_env(env.clone());
            let compiled = compile(&prog, &opts).expect("compile");
            let mut s = String::new();
            for r in &compiled.compile_report.remarks {
                s.push_str(&format!("{r}\n"));
            }
            for rec in &compiled.report.merges {
                s.push_str(&format!("{rec:?}\n"));
            }
            // Each compile mints fresh `#N` suffixes for the memory
            // variables it introduces; scrub them so the comparison is
            // about *decisions*, not interner state.
            streams.push(arraymem_ir::pretty::scrub_uniques(&s));
        }
        for w in streams.windows(2) {
            assert_eq!(w[0], w[1], "merge decisions drifted across runs");
        }
    }
}
