//! Memory block merging: non-interfering allocations share one block.
//!
//! Short-circuiting removes copies by constructing an array *inside* its
//! destination's memory; this pass removes whole allocations by letting
//! arrays whose blocks never interfere share a block outright — the
//! affine-reuse idea of FORAY-GEN and of redundant-array elimination,
//! applied at the granularity of the IR's `alloc` statements.
//!
//! Two blocks **interfere** when their live ranges overlap *and* their
//! LMAD footprints are not provably disjoint
//! ([`arraymem_lmad::overlap::non_overlap`]). The pass builds the
//! interference relation over the top-level allocations, then greedily
//! colors it first-fit in program order: each block tries to move into the
//! earliest surviving compatible block (the *host*); on success every
//! memory binding naming the victim is rewritten onto the host, and the
//! victim's `alloc` goes dead for `cleanup` to collect.
//!
//! Legality is two-tiered, and the tier is observable:
//!
//! - **Lifetime-justified** merges (disjoint live ranges at top-level
//!   statement granularity) need no runtime support; their
//!   [`MergeRecord::pairs`] is empty.
//! - **Footprint-justified** merges (overlapping live ranges, symbolically
//!   disjoint footprints) record every footprint pair whose disjointness
//!   the symbolic test approved; the checked-mode VM re-proves each pair
//!   concretely at runtime, the way `CircuitCheck` footprints are
//!   re-proved.
//!
//! Ordering: after `short_circuit` (so rebased webs are seen in their
//! final blocks), before `cleanup` (which deletes the vacated `alloc`s)
//! and `release` (whose plan sees the merged liveness).

use crate::introduce::collect_bindings;
use crate::remark::MergeReject;
use arraymem_ir::{Block, ElemType, Exp, MapBody, MemBinding, Program, SliceSpec, Type, Var};
use arraymem_lmad::overlap::non_overlap;
use arraymem_lmad::Lmad;
use arraymem_symbolic::{Env, Poly};
use std::collections::{HashMap, HashSet};

/// Union-find over memory variables: two mem vars land in one class when
/// a loop or branch can make them name the same runtime block (a loop's
/// merge parameter aliases its initializer, its per-iteration result and
/// the loop's output; a branch output aliases both branch results). A
/// candidate block's liveness must then count every touch of its class.
struct MemAliases {
    parent: HashMap<Var, Var>,
}

impl MemAliases {
    fn find(&mut self, v: Var) -> Var {
        let p = match self.parent.get(&v) {
            Some(p) => *p,
            None => return v,
        };
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: Var, b: Var) {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parent.entry(ra).or_insert(ra);
        self.parent.entry(rb).or_insert(rb);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    /// Build the alias classes of a whole program body.
    fn build(block: &Block) -> MemAliases {
        let mut uf = MemAliases {
            parent: HashMap::new(),
        };
        uf.scan(block);
        uf
    }

    fn scan(&mut self, block: &Block) {
        for stm in &block.stms {
            match &stm.exp {
                Exp::If { then_b, else_b, .. } => {
                    for (k, pe) in stm.pat.iter().enumerate() {
                        if matches!(pe.ty, Type::Mem) {
                            if let Some(r) = then_b.result.get(k) {
                                self.union(pe.var, *r);
                            }
                            if let Some(r) = else_b.result.get(k) {
                                self.union(pe.var, *r);
                            }
                        }
                    }
                    self.scan(then_b);
                    self.scan(else_b);
                }
                Exp::Loop {
                    params,
                    inits,
                    body,
                    ..
                } => {
                    for (k, pp) in params.iter().enumerate() {
                        if matches!(pp.ty, Type::Mem) {
                            if let Some(init) = inits.get(k) {
                                self.union(pp.var, *init);
                            }
                            // Iteration n+1's parameter is iteration n's
                            // result; the loop output is the last one.
                            if let Some(r) = body.result.get(k) {
                                self.union(pp.var, *r);
                            }
                            if let Some(pe) = stm.pat.get(k) {
                                self.union(pp.var, pe.var);
                            }
                        }
                    }
                    self.scan(body);
                }
                Exp::Map(m) => {
                    if let MapBody::Lambda { body, .. } = &m.body {
                        self.scan(body);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Array variables read or written through **runtime indices** — a
/// gather's source, a scatter's destination — at every nesting depth.
/// The blocks backing these arrays have no affine footprint summary (see
/// [`arraymem_lmad::OpaqueIxFn`]): a runtime index may land anywhere
/// within the extent, so footprint-justified sharing is off the table for
/// them and only disjoint lifetimes can let them share a block.
fn runtime_indexed_arrays(block: &Block, out: &mut Vec<Var>) {
    for stm in &block.stms {
        match &stm.exp {
            Exp::Gather { src, .. } => out.push(*src),
            Exp::Update {
                dst,
                slice: SliceSpec::Scatter(_),
                ..
            } => out.push(*dst),
            Exp::If { then_b, else_b, .. } => {
                runtime_indexed_arrays(then_b, out);
                runtime_indexed_arrays(else_b, out);
            }
            Exp::Loop { body, .. } => runtime_indexed_arrays(body, out),
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &m.body {
                    runtime_indexed_arrays(body, out);
                }
            }
            _ => {}
        }
    }
}

/// Memory bindings (pattern or loop parameter) at nesting depth ≥ 1
/// inside an expression — the tenants `Exp::free_vars` cannot surface.
fn deep_blocks(exp: &Exp, out: &mut Vec<Var>) {
    fn scan_block(b: &Block, out: &mut Vec<Var>) {
        for stm in &b.stms {
            for pe in &stm.pat {
                if let Some(mb) = &pe.mem {
                    out.push(mb.block);
                }
            }
            deep_blocks(&stm.exp, out);
        }
    }
    match exp {
        Exp::If { then_b, else_b, .. } => {
            scan_block(then_b, out);
            scan_block(else_b, out);
        }
        Exp::Loop { params, body, .. } => {
            for pp in params {
                if let Some(mb) = &pp.mem {
                    out.push(mb.block);
                }
            }
            scan_block(body, out);
        }
        Exp::Map(m) => {
            if let MapBody::Lambda { body, .. } = &m.body {
                scan_block(body, out);
            }
        }
        _ => {}
    }
}

/// One executed merge, in the transport form the executor consumes: the
/// surviving block, the vacated one, and the footprint pairs whose
/// symbolic disjointness justified sharing despite overlapping live
/// ranges. Empty `pairs` means the merge is lifetime-justified and needs
/// no runtime re-proof.
#[derive(Clone, Debug)]
pub struct MergeRecord {
    /// The block that survives and absorbs the victim's tenants.
    pub host: Var,
    /// The block whose bindings were rewritten onto `host`.
    pub victim: Var,
    /// (victim-tenant, resident-tenant) footprint pairs the symbolic
    /// non-overlap test approved; checked mode enumerates each pair
    /// concretely.
    pub pairs: Vec<(Lmad, Lmad)>,
}

/// One merge decision, for remarks and tests.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    pub host: Var,
    pub victim: Var,
    /// Live ranges overlapped; disjoint footprints justified the merge.
    pub by_footprint: bool,
    /// Pushed through a failing interference check by the test-only
    /// `force_unsafe_merge` hook.
    pub forced: bool,
}

/// Everything the merge pass decided, for the pipeline to turn into
/// remarks and for the executor to verify.
#[derive(Clone, Debug, Default)]
pub struct MergeReport {
    pub merged: Vec<MergeOutcome>,
    /// Blocks that kept their own allocation, with the reason the closed
    /// taxonomy assigns (precedence: interference over size over element
    /// type — the reason closest to an actual merge wins).
    pub rejected: Vec<(Var, MergeReject)>,
    /// Executor-facing records, one per merge.
    pub records: Vec<MergeRecord>,
}

/// One block's claim on (part of) a host block: the top-level statement
/// interval over which its tenants are live, and — when every tenant's
/// index function is a single LMAD — the footprints it touches.
struct Occupancy {
    first: usize,
    /// `usize::MAX` when a tenant backs a program result.
    last: usize,
    /// `None` when the block is opaque (touched through an alias class —
    /// a loop initializer, a nested tenant) or some tenant footprint is
    /// not a single LMAD; such an occupancy can only coexist with others
    /// by disjoint lifetimes.
    lmads: Option<Vec<Lmad>>,
}

/// A surviving allocation during coloring.
struct Rep {
    var: Var,
    elem: ElemType,
    size: Poly,
    /// Top-level index of the `alloc` statement: a host must be allocated
    /// before any merged tenant first writes it.
    alloc_idx: usize,
    occs: Vec<Occupancy>,
    merged_away: bool,
}

/// How one victim/host occupancy comparison came out.
enum Fit {
    /// Disjoint live ranges: compatible with no runtime obligation.
    Lifetimes,
    /// Overlapping live ranges, provably disjoint footprints: compatible,
    /// carrying the pairs to re-prove at runtime.
    Footprints(Vec<(Lmad, Lmad)>),
    Interferes,
}

/// Run block merging over a memory-annotated program. `force_unsafe`
/// (test-only) pushes interference-rejected candidates into a host
/// anyway, so the checked VM's merge cross-check can be shown to fire.
pub fn merge_blocks(prog: &mut Program, env: &Env, force_unsafe: bool) -> MergeReport {
    let mut report = MergeReport::default();

    // Candidate allocations: top-level `alloc` statements, in order.
    let allocs: Vec<(usize, Var, ElemType, Poly)> = prog
        .body
        .stms
        .iter()
        .enumerate()
        .filter_map(|(i, stm)| match &stm.exp {
            Exp::Alloc { elem, size } => Some((i, stm.pat[0].var, *elem, size.clone())),
            _ => None,
        })
        .collect();
    if allocs.len() < 2 {
        return report;
    }

    // A block *escapes* only when its variable is itself a program
    // result: the program hands the raw block to the caller, so renaming
    // it would change the interface. Loop-carried blocks are handled by
    // the alias classes below instead of escaping wholesale.
    let escaping: HashSet<Var> = prog.body.result.iter().copied().collect();
    let cand_set: HashSet<Var> = allocs.iter().map(|(_, m, _, _)| *m).collect();

    // Bindings at every depth (for resolving uses to blocks), and alias
    // classes (for resolving loop-carried memory back to the candidate
    // allocations it may name at runtime).
    let mut bindings: HashMap<Var, MemBinding> = HashMap::new();
    collect_bindings(&prog.body, &mut bindings);
    let mut aliases = MemAliases::build(&prog.body);
    let mut class: HashMap<Var, Vec<Var>> = HashMap::new();
    for m in &cand_set {
        class.entry(aliases.find(*m)).or_default().push(*m);
    }
    let mut resolve = |b: Var| -> Vec<Var> {
        match class.get(&aliases.find(b)) {
            Some(cs) => cs.clone(),
            None => Vec::new(),
        }
    };

    // Direct top-level tenants, per block: the bindings whose footprints
    // we can enumerate symbolically.
    let mut tenants: HashMap<Var, Vec<(Var, MemBinding)>> = HashMap::new();
    for stm in &prog.body.stms {
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                tenants
                    .entry(mb.block)
                    .or_default()
                    .push((pe.var, mb.clone()));
            }
        }
    }

    // Live interval of each candidate block, at top-level statement
    // granularity: statement `i` touches block `M` when it binds an array
    // into `M`, uses a variable bound in `M`, or names (directly or
    // through an alias class — a loop initializer, a nested tenant) a mem
    // var that may be `M` at runtime. Any touch *through* an alias is
    // opaque: the footprints written through it are unknown, so the block
    // can only share by disjoint lifetimes.
    let mut first: HashMap<Var, usize> = HashMap::new();
    let mut last: HashMap<Var, usize> = HashMap::new();
    let mut opaque: HashSet<Var> = HashSet::new();
    let touch =
        |m: Var, i: usize, first: &mut HashMap<Var, usize>, last: &mut HashMap<Var, usize>| {
            first.entry(m).and_modify(|f| *f = (*f).min(i)).or_insert(i);
            last.entry(m).and_modify(|l| *l = (*l).max(i)).or_insert(i);
        };
    for (i, stm) in prog.body.stms.iter().enumerate() {
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                for c in resolve(mb.block) {
                    touch(c, i, &mut first, &mut last);
                    if c != mb.block {
                        opaque.insert(c);
                    }
                }
            }
        }
        for u in stm.exp.free_vars() {
            if let Some(mb) = bindings.get(&u) {
                for c in resolve(mb.block) {
                    touch(c, i, &mut first, &mut last);
                    if c != mb.block {
                        opaque.insert(c);
                    }
                }
            } else {
                // A mem var used as an operand (a loop initializer): the
                // expression may write through it with footprints this
                // pass never sees.
                for c in resolve(u) {
                    touch(c, i, &mut first, &mut last);
                    opaque.insert(c);
                }
            }
        }
        let mut deep = Vec::new();
        deep_blocks(&stm.exp, &mut deep);
        for b in deep {
            for c in resolve(b) {
                touch(c, i, &mut first, &mut last);
                opaque.insert(c);
            }
        }
    }
    for r in &prog.body.result {
        let backing = bindings.get(r).map(|mb| mb.block).unwrap_or(*r);
        for c in resolve(backing) {
            last.insert(c, usize::MAX);
            if c != backing {
                opaque.insert(c);
            }
        }
    }

    // Blocks accessed through runtime indices join the opaque set: their
    // footprints cannot be enumerated, so they can share only by disjoint
    // lifetimes — and when overlapping lifetimes sink them, the reject is
    // reported as `RuntimeIndexed` rather than a generic interference.
    let mut runtime_indexed: HashSet<Var> = HashSet::new();
    let mut ri_arrays = Vec::new();
    runtime_indexed_arrays(&prog.body, &mut ri_arrays);
    for a in ri_arrays {
        if let Some(mb) = bindings.get(&a) {
            for c in resolve(mb.block) {
                runtime_indexed.insert(c);
                opaque.insert(c);
            }
        }
    }

    // Greedy first-fit coloring in first-use order (allocation statements
    // are hoisted, so their textual order says nothing about liveness;
    // first-use order lets each block try the blocks whose tenants came
    // before it).
    let mut ordered = allocs.clone();
    ordered.sort_by_key(|(idx, m, _, _)| (first.get(m).copied().unwrap_or(usize::MAX), *idx));
    let mut reps: Vec<Rep> = Vec::new();
    let mut rename: HashMap<Var, Var> = HashMap::new();
    for (alloc_idx, m, elem, size) in &ordered {
        if escaping.contains(m) {
            report.rejected.push((*m, MergeReject::Escapes));
            reps.push(Rep {
                var: *m,
                elem: *elem,
                size: size.clone(),
                alloc_idx: *alloc_idx,
                occs: Vec::new(),
                merged_away: true, // not a host either: liveness unknown
            });
            continue;
        }
        if !first.contains_key(m) {
            continue; // dead block; cleanup removes it
        }
        let ts = tenants.get(m).map(Vec::as_slice).unwrap_or(&[]);
        let lmads = if opaque.contains(m) || ts.is_empty() {
            None
        } else {
            ts.iter()
                .map(|(_, mb)| mb.ixfn.as_single().cloned())
                .collect()
        };
        let occ = Occupancy {
            first: first.get(m).copied().unwrap_or(usize::MAX),
            last: last.get(m).copied().unwrap_or(0),
            lmads,
        };
        let mut saw_interference = false;
        let mut saw_size_fail = false;
        let mut hosts_tried = 0usize;
        let mut chosen: Option<(usize, Vec<(Lmad, Lmad)>)> = None;
        let mut forced_host: Option<usize> = None;
        for (ri, rep) in reps.iter().enumerate() {
            if rep.merged_away {
                continue;
            }
            hosts_tried += 1;
            if rep.elem != *elem {
                continue;
            }
            // The host's `alloc` must execute before the victim's tenants
            // first write into it.
            if rep.alloc_idx > occ.first {
                saw_interference = true;
                continue;
            }
            // The victim's footprints must fit inside the host block.
            if !env.prove_le(size, &rep.size) {
                saw_size_fail = true;
                continue;
            }
            let mut pairs: Vec<(Lmad, Lmad)> = Vec::new();
            let mut fits = true;
            for resident in &rep.occs {
                match occupancy_fit(&occ, resident, env) {
                    Fit::Lifetimes => {}
                    Fit::Footprints(mut p) => pairs.append(&mut p),
                    Fit::Interferes => {
                        fits = false;
                        break;
                    }
                }
            }
            if fits {
                chosen = Some((ri, pairs));
                break;
            }
            saw_interference = true;
            if forced_host.is_none() && force_unsafe {
                // Forcing needs enumerable footprints on both sides, so
                // the checked VM has pairs to refute.
                let enumerable = occ.lmads.is_some() && rep.occs.iter().all(|o| o.lmads.is_some());
                if enumerable {
                    forced_host = Some(ri);
                }
            }
        }
        if let Some((ri, pairs)) = chosen {
            let host = reps[ri].var;
            report.merged.push(MergeOutcome {
                host,
                victim: *m,
                by_footprint: !pairs.is_empty(),
                forced: false,
            });
            report.records.push(MergeRecord {
                host,
                victim: *m,
                pairs,
            });
            rename.insert(*m, host);
            reps[ri].occs.push(occ);
            continue;
        }
        if let Some(ri) = forced_host {
            let host = reps[ri].var;
            let victim_lmads = occ.lmads.clone().expect("forced occupancy is enumerable");
            let pairs: Vec<(Lmad, Lmad)> = reps[ri]
                .occs
                .iter()
                .flat_map(|o| o.lmads.as_ref().expect("forced host is enumerable"))
                .flat_map(|rl| victim_lmads.iter().map(move |vl| (vl.clone(), rl.clone())))
                .collect();
            report.merged.push(MergeOutcome {
                host,
                victim: *m,
                by_footprint: true,
                forced: true,
            });
            report.records.push(MergeRecord {
                host,
                victim: *m,
                pairs,
            });
            rename.insert(*m, host);
            reps[ri].occs.push(occ);
            continue;
        }
        if hosts_tried > 0 {
            let why = if saw_interference && runtime_indexed.contains(m) {
                MergeReject::RuntimeIndexed
            } else if saw_interference {
                MergeReject::Interference
            } else if saw_size_fail {
                MergeReject::SizeNotProvable
            } else {
                MergeReject::ElemMismatch
            };
            report.rejected.push((*m, why));
        }
        reps.push(Rep {
            var: *m,
            elem: *elem,
            size: size.clone(),
            alloc_idx: *alloc_idx,
            occs: vec![occ],
            merged_away: false,
        });
    }

    if !rename.is_empty() {
        rewrite_blocks(prog, &rename);
    }
    report
}

/// Compare a victim occupancy against one resident occupancy of a host.
fn occupancy_fit(victim: &Occupancy, resident: &Occupancy, env: &Env) -> Fit {
    if victim.last < resident.first || resident.last < victim.first {
        return Fit::Lifetimes;
    }
    let (Some(va), Some(ra)) = (&victim.lmads, &resident.lmads) else {
        return Fit::Interferes;
    };
    let mut pairs = Vec::with_capacity(va.len() * ra.len());
    for v in va {
        for r in ra {
            if !non_overlap(v, r, env) {
                return Fit::Interferes;
            }
            pairs.push((v.clone(), r.clone()));
        }
    }
    Fit::Footprints(pairs)
}

/// Rewrite every memory binding whose block was merged away onto its
/// host, at every nesting depth (patterns and loop merge parameters) —
/// the same walk `collect_bindings` performs, mutably.
fn rewrite_blocks(prog: &mut Program, rename: &HashMap<Var, Var>) {
    rewrite_block(&mut prog.body, rename);
}

fn rewrite_block(block: &mut Block, rename: &HashMap<Var, Var>) {
    for stm in &mut block.stms {
        for pe in &mut stm.pat {
            if let Some(mb) = &mut pe.mem {
                if let Some(host) = rename.get(&mb.block) {
                    mb.block = *host;
                }
            }
        }
        match &mut stm.exp {
            Exp::If { then_b, else_b, .. } => {
                rewrite_block(then_b, rename);
                rewrite_block(else_b, rename);
            }
            Exp::Loop {
                params,
                inits,
                body,
                ..
            } => {
                for pp in params {
                    if let Some(mb) = &mut pp.mem {
                        if let Some(host) = rename.get(&mb.block) {
                            mb.block = *host;
                        }
                    }
                }
                for init in inits {
                    if let Some(host) = rename.get(init) {
                        *init = *host;
                    }
                }
                rewrite_block(body, rename);
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &mut m.body {
                    rewrite_block(body, rename);
                }
            }
            _ => {}
        }
    }
    // A vacated block's variable can flow out of a nested block as an
    // existential-memory result; the program-level result never names a
    // victim (such blocks are rejected as `Escapes`).
    for r in &mut block.result {
        if let Some(host) = rename.get(r) {
            *r = *host;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remark::MergeReject;
    use crate::{compile, Options};
    use arraymem_ir::{Builder, PatElem, ScalarExp, Stm};
    use arraymem_lmad::{Dim, IndexFn};
    use arraymem_symbolic::sym;

    fn p(v: Var) -> Poly {
        Poly::var(v)
    }

    fn count_allocs(block: &Block) -> usize {
        block
            .stms
            .iter()
            .filter(|s| matches!(s.exp, Exp::Alloc { .. }))
            .count()
    }

    /// A three-stage chain `a = iota n; b = copy a; c = copy b` gives the
    /// last allocation a live range disjoint from the first's: `c` merges
    /// into `a`'s block with no footprint obligations (empty pairs).
    #[test]
    fn lifetime_disjoint_chain_merges() {
        let mut bld = Builder::new("chain");
        let n = bld.scalar_param("ch_n", ElemType::I64);
        let mut body = bld.block();
        let a = body.iota("ch_a", p(n));
        let b = body.copy("ch_b", a);
        let c = body.copy("ch_c", b);
        let blk = body.finish(vec![c]);
        let prog = bld.finish(blk);

        let mut env = Env::new();
        env.assume_ge(n, 1);
        // Short-circuiting off, so both copies (and all three blocks)
        // survive to the merge pass.
        let opts = Options {
            merge: true,
            ..Options::default()
        }
        .with_env(env);
        let compiled = compile(&prog, &opts).expect("compile");

        assert_eq!(compiled.report.merges.len(), 1, "exactly one merge");
        let rec = &compiled.report.merges[0];
        assert!(
            rec.pairs.is_empty(),
            "lifetime-justified merge carries no footprint pairs"
        );
        assert_ne!(rec.host, rec.victim);
        // Cleanup collected the vacated alloc: 2 blocks serve 3 arrays.
        assert_eq!(count_allocs(&compiled.program.body), 2);
    }

    /// Hand-built memory-annotated program where the victim's tenant sits
    /// at offset `n` of a `2n` host whose resident occupies `[0, n)`, with
    /// overlapping live ranges: the merge must be footprint-justified and
    /// record the (victim, resident) pair for checked mode.
    #[test]
    fn footprint_disjoint_merge_records_pairs() {
        let n = sym("fpm_n");
        let blk_a = sym("fpm_A");
        let blk_b = sym("fpm_B");
        let x = sym("fpm_x");
        let y = sym("fpm_y");
        let sx = sym("fpm_sx");
        let sy = sym("fpm_sy");

        let size = Poly::var(n) * Poly::constant(2);
        let arr_ty = Type::array(ElemType::F32, vec![Poly::var(n)]);
        let lmad_lo = Lmad::new(0, vec![Dim::new(Poly::var(n), 1)]);
        let lmad_hi = Lmad::new(Poly::var(n), vec![Dim::new(Poly::var(n), 1)]);

        let alloc = |blk: Var| Stm {
            pat: vec![PatElem::new(blk, Type::Mem)],
            exp: Exp::Alloc {
                elem: ElemType::F32,
                size: size.clone(),
            },
        };
        let scratch_in = |v: Var, blk: Var, l: Lmad| Stm {
            pat: vec![PatElem {
                var: v,
                ty: arr_ty.clone(),
                mem: Some(MemBinding {
                    block: blk,
                    ixfn: IndexFn::from_lmad(l),
                }),
            }],
            exp: Exp::Scratch {
                elem: ElemType::F32,
                shape: vec![Poly::var(n)],
            },
        };
        let read0 = |s: Var, arr: Var| Stm {
            pat: vec![PatElem::new(s, Type::Scalar(ElemType::F32))],
            exp: Exp::Scalar(ScalarExp::Index(arr, vec![ScalarExp::i64(0)])),
        };

        let mut prog = Program {
            name: "fpmerge".into(),
            params: vec![(n, Type::Scalar(ElemType::I64))],
            pipeline_fingerprint: 0,
            body: Block {
                stms: vec![
                    alloc(blk_a),
                    alloc(blk_b),
                    // x lives in A at [0, n); y in B at [n, 2n). Their
                    // live ranges overlap (both read by the tail), so
                    // only footprint disjointness can justify sharing.
                    scratch_in(x, blk_a, lmad_lo),
                    scratch_in(y, blk_b, lmad_hi),
                    read0(sx, x),
                    read0(sy, y),
                ],
                result: vec![sx, sy],
            },
        };
        let mut env = Env::new();
        env.assume_ge(n, 1);

        let report = merge_blocks(&mut prog, &env, false);
        assert_eq!(report.merged.len(), 1);
        assert!(report.merged[0].by_footprint);
        assert!(!report.merged[0].forced);
        assert_eq!(report.records.len(), 1);
        let rec = &report.records[0];
        assert_eq!(rec.host, blk_a);
        assert_eq!(rec.victim, blk_b);
        assert_eq!(rec.pairs.len(), 1, "one (victim, resident) pair");
        // The rewrite moved y's binding onto the host block.
        let y_mb = prog.body.stms[3].pat[0].mem.as_ref().expect("y has mem");
        assert_eq!(y_mb.block, blk_a);
    }

    /// A lone host of a different element type: the only reject reason
    /// left standing is the element mismatch.
    #[test]
    fn elem_mismatch_is_rejected() {
        let mut bld = Builder::new("elems");
        let n = bld.scalar_param("em_n", ElemType::I64);
        let mut body = bld.block();
        let a = body.iota("em_a", p(n)); // i64 block
        let s = body.scalar(
            "em_s",
            ElemType::I64,
            ScalarExp::Index(a, vec![ScalarExp::i64(0)]),
        );
        // f32 block, live only after `a` is dead — lifetimes are fine,
        // the element types are not.
        let w = body.scratch("em_w", ElemType::F32, vec![p(n)]);
        let ws = body.scalar(
            "em_ws",
            ElemType::F32,
            ScalarExp::Index(w, vec![ScalarExp::var(s)]),
        );
        let blk = body.finish(vec![ws]);
        let prog = bld.finish(blk);

        let mut env = Env::new();
        env.assume_ge(n, 1);
        let opts = Options {
            merge: true,
            ..Options::default()
        }
        .with_env(env);
        let compiled = compile(&prog, &opts).expect("compile");

        assert!(compiled.report.merges.is_empty());
        let rejects: Vec<&MergeReject> = compiled
            .compile_report
            .remarks
            .iter()
            .filter_map(|r| match &r.kind {
                crate::remark::RemarkKind::MergeRejected(why) => Some(why),
                _ => None,
            })
            .collect();
        assert!(
            rejects
                .iter()
                .any(|w| matches!(w, MergeReject::ElemMismatch)),
            "expected an ElemMismatch reject, got {rejects:?}"
        );
    }
}
