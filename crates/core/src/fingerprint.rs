//! Stable IR fingerprints for the executor's plan cache.
//!
//! A lowered `ExecPlan` is a pure function of (program, circuit checks,
//! kernel name→index mapping). The executor caches plans keyed by hashes
//! of those three; this module supplies the first two. The hash walks the
//! IR's `Debug` rendering — which includes every pattern, memory binding,
//! index function and polynomial, with symbols printed by *name* — so two
//! fingerprints agree exactly when the printed IR agrees. That is the
//! stability the cache needs: the same compiled `Program` value rehashed
//! on every run of a benchmark loop keys the same slot, without the cache
//! having to retain or compare whole programs.

use arraymem_ir::Program;
use std::fmt::Write;

/// FNV-1a over anything `Debug`-formattable, without materializing the
/// string.
struct FnvWriter(u64);

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.as_bytes() {
            self.0 = (self.0 ^ *b as u64).wrapping_mul(0x100000001b3);
        }
        Ok(())
    }
}

fn fnv_debug(x: &impl std::fmt::Debug) -> u64 {
    let mut w = FnvWriter(0xcbf29ce484222325);
    // Writing into FnvWriter cannot fail.
    let _ = write!(&mut w, "{x:?}");
    w.0
}

/// Fingerprint of a program's full IR (structure, types, memory
/// annotations, index functions).
pub fn fingerprint(prog: &Program) -> u64 {
    fnv_debug(prog)
}

/// Fingerprint of a slice of `Debug`-formattable items (the compile
/// report's [`CircuitCheck`](crate::CircuitCheck)s): plans lowered with
/// different check sets must not share a cache slot.
pub fn fingerprint_items<T: std::fmt::Debug>(items: &[T]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ items.len() as u64;
    for it in items {
        h = h.rotate_left(7) ^ fnv_debug(it);
    }
    h
}

/// Fold several component fingerprints into one cache key. Order matters
/// (the components are positional: program, kernels, checks, …) and the
/// byte-wise FNV fold keeps single-bit differences in any component from
/// cancelling out — the plan cache shards by this key, so a program
/// prepared with checks and the same program prepared without must land
/// on different slots with overwhelming probability.
pub fn combine_fingerprints(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use arraymem_ir::builder::Builder;
    use arraymem_ir::ElemType;
    use arraymem_symbolic::Poly;

    fn prog(n: i64) -> Program {
        let mut b = Builder::new("fp_test");
        let _x = b.scalar_param("x", ElemType::I64);
        let mut bb = b.block();
        let a = bb.iota("a", Poly::constant(n));
        let body = bb.finish(vec![a]);
        b.finish(body)
    }

    #[test]
    fn equal_programs_hash_equal_and_rehash_stably() {
        let p = prog(8);
        let f1 = fingerprint(&p);
        let f2 = fingerprint(&p);
        assert_eq!(f1, f2);
        assert_eq!(fingerprint(&p.clone()), f1);
    }

    #[test]
    fn structurally_different_programs_hash_differently() {
        assert_ne!(fingerprint(&prog(8)), fingerprint(&prog(9)));
    }

    #[test]
    fn check_sets_distinguish() {
        let a = fingerprint_items::<u32>(&[]);
        let b = fingerprint_items(&[1u32]);
        assert_ne!(a, b);
    }

    #[test]
    fn combined_keys_are_order_and_component_sensitive() {
        let k = combine_fingerprints(&[1, 2, 3]);
        assert_eq!(combine_fingerprints(&[1, 2, 3]), k);
        assert_ne!(combine_fingerprints(&[3, 2, 1]), k);
        assert_ne!(combine_fingerprints(&[1, 2]), k);
        assert_ne!(combine_fingerprints(&[1, 2, 4]), k);
    }
}
