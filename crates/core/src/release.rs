//! Memory release plans: where the VM may return a block to the store's
//! free list.
//!
//! The short-circuiting passes decide where arrays *live*; this analysis
//! decides when their blocks *die*. It threads the IR's alias analysis
//! ([`arraymem_ir::alias`]) and the last-use discipline of
//! [`arraymem_ir::lastuse`] down to the runtime: for every statement of
//! every block, which locally-allocated memory blocks have provably seen
//! their final use once the statement completes. The VM releases exactly
//! those, and the store recycles them for later allocations.
//!
//! The plan is conservative in the same ways the last-use analysis is:
//!
//! - a use of *any* member of an alias class keeps every memory block
//!   associated with the class alive (rebased webs associate one class
//!   with several block variables — all stay live together);
//! - uses inside nested blocks (`if`/`loop`/lambda bodies) count at the
//!   enclosing statement;
//! - only blocks bound by an `alloc` statement of the *same* block are
//!   ever released there; parameter memory and memory flowing in from
//!   enclosing scopes is left to the end-of-run sweep
//!   (`MemStore::release_all_live` in the executor).

use arraymem_ir::alias::{aliases, AliasMap};
use arraymem_ir::{Block, Exp, MapBody, Program, Stm, Var};
use std::collections::{HashMap, HashSet};

/// For each block of a program (keyed by address — the program must not
/// be mutated while the plan is in use), the memory variables whose block
/// may be released after each statement index.
#[derive(Default, Debug)]
pub struct ReleasePlan {
    per_block: HashMap<usize, Vec<Vec<Var>>>,
}

fn block_key(b: &Block) -> usize {
    b as *const Block as usize
}

impl ReleasePlan {
    /// An empty plan: nothing is ever released early.
    pub fn none() -> ReleasePlan {
        ReleasePlan::default()
    }

    /// Compute the release plan of a program (with or without memory
    /// annotations; a memory-free program yields an empty plan).
    pub fn compute(prog: &Program) -> ReleasePlan {
        let am = aliases(prog);
        // Associate every array variable with the memory variables its
        // pattern annotations name, then lift to alias-class roots: a use
        // of any class member is a use of all the class's blocks.
        let mut var2mem: Vec<(Var, Var)> = Vec::new();
        collect_mem_bindings(&prog.body, &mut var2mem);
        let mut class_mems: HashMap<Var, Vec<Var>> = HashMap::new();
        for (v, m) in &var2mem {
            let e = class_mems.entry(am.root(*v)).or_default();
            if !e.contains(m) {
                e.push(*m);
            }
        }
        let mut plan = ReleasePlan::default();
        plan.visit_block(&prog.body, &am, &class_mems);
        plan
    }

    /// **Test-only mutation hook.** A deliberately wrong plan: every
    /// release scheduled after statement `k+1` fires after statement `k`
    /// instead — one statement *before* the last-use analysis allows. A
    /// block whose final use is a read therefore gets recycled while that
    /// read is still pending, which the checked VM's use-after-release
    /// detector must flag (mutation-style self-test of both the plan and
    /// the sanitizer).
    pub fn compute_skewed_early(prog: &Program) -> ReleasePlan {
        let mut plan = ReleasePlan::compute(prog);
        for rel in plan.per_block.values_mut() {
            for k in 0..rel.len().saturating_sub(1) {
                let moved = std::mem::take(&mut rel[k + 1]);
                rel[k].extend(moved);
            }
        }
        plan
    }

    /// Memory variables to release after statement `stm_idx` of `block`.
    pub fn after(&self, block: &Block, stm_idx: usize) -> &[Var] {
        self.per_block
            .get(&block_key(block))
            .and_then(|v| v.get(stm_idx))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of scheduled release points (for tests).
    pub fn num_releases(&self) -> usize {
        self.per_block.values().flatten().map(|v| v.len()).sum()
    }

    fn visit_block(&mut self, block: &Block, am: &AliasMap, class_mems: &HashMap<Var, Vec<Var>>) {
        // Blocks releasable here: those allocated here.
        let locals: HashSet<Var> = block
            .stms
            .iter()
            .filter(|s| matches!(s.exp, Exp::Alloc { .. }))
            .map(|s| s.pat[0].var)
            .collect();
        // Everything the block returns (or that shares a class with a
        // result) stays live past the block's end.
        let mut needed: HashSet<Var> = HashSet::new();
        for r in &block.result {
            needed.insert(*r);
            if let Some(ms) = class_mems.get(&am.root(*r)) {
                needed.extend(ms.iter().copied());
            }
        }
        let mut releases: Vec<Vec<Var>> = vec![Vec::new(); block.stms.len()];
        for (k, stm) in block.stms.iter().enumerate().rev() {
            let mut uses: HashSet<Var> = HashSet::new();
            mem_uses(stm, am, class_mems, &mut uses);
            // Iterate in symbol (= creation) order: the release schedule —
            // and hence the lowered instruction stream and the store's
            // free-list traffic — must not depend on hash iteration order.
            let mut uses: Vec<Var> = uses.into_iter().collect();
            uses.sort_unstable();
            for m in uses {
                if locals.contains(&m) && needed.insert(m) {
                    releases[k].push(m);
                }
            }
        }
        self.per_block.insert(block_key(block), releases);
        for stm in &block.stms {
            match &stm.exp {
                Exp::If { then_b, else_b, .. } => {
                    self.visit_block(then_b, am, class_mems);
                    self.visit_block(else_b, am, class_mems);
                }
                Exp::Loop { body, .. } => self.visit_block(body, am, class_mems),
                Exp::Map(m) => {
                    if let MapBody::Lambda { body, .. } = &m.body {
                        self.visit_block(body, am, class_mems);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Memory variables `stm` keeps alive: blocks named by its pattern (and
/// loop-parameter) annotations, its own binding if it is an `alloc`, and
/// every block associated with the alias class of any free variable —
/// nested blocks included, via `Exp::free_vars`.
fn mem_uses(stm: &Stm, am: &AliasMap, class_mems: &HashMap<Var, Vec<Var>>, out: &mut HashSet<Var>) {
    for pe in &stm.pat {
        if let Some(mb) = &pe.mem {
            out.insert(mb.block);
        }
    }
    if matches!(stm.exp, Exp::Alloc { .. }) {
        out.insert(stm.pat[0].var);
    }
    if let Exp::Loop { params, .. } = &stm.exp {
        for pp in params {
            if let Some(mb) = &pp.mem {
                out.insert(mb.block);
            }
        }
    }
    for v in stm.exp.free_vars() {
        // `v` itself may be a memory variable (annotations of nested
        // blocks surface through free_vars); non-memory variables are
        // harmless — they never match an alloc-bound local.
        out.insert(v);
        if let Some(ms) = class_mems.get(&am.root(v)) {
            out.extend(ms.iter().copied());
        }
    }
}

fn collect_mem_bindings(block: &Block, out: &mut Vec<(Var, Var)>) {
    for stm in &block.stms {
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                out.push((pe.var, mb.block));
            }
        }
        match &stm.exp {
            Exp::If { then_b, else_b, .. } => {
                collect_mem_bindings(then_b, out);
                collect_mem_bindings(else_b, out);
            }
            Exp::Loop { params, body, .. } => {
                for pp in params {
                    if let Some(mb) = &pp.mem {
                        out.push((pp.var, mb.block));
                    }
                }
                collect_mem_bindings(body, out);
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &m.body {
                    collect_mem_bindings(body, out);
                }
            }
            _ => {}
        }
    }
}
