//! A side table collecting the memory bindings of every array variable in
//! a program (from pattern annotations and synthesized parameter
//! bindings).

use arraymem_ir::{Block, Exp, MapBody, MemBinding, Program, Var};
use arraymem_lmad::IndexFn;
use arraymem_symbolic::Sym;
use std::collections::HashMap;

/// Maps array variables to their memory bindings and records the memory
/// block synthesized for each array *parameter* (parameters arrive in
/// caller-provided blocks, row-major).
#[derive(Clone, Default, Debug)]
pub struct MemTable {
    bindings: HashMap<Var, MemBinding>,
    /// block var synthesized for each array parameter.
    pub param_blocks: Vec<(Var, Var)>,
}

impl MemTable {
    /// Build the table for a memory-annotated program.
    pub fn build(prog: &Program) -> MemTable {
        let mut t = MemTable::default();
        for (v, ty) in &prog.params {
            if ty.is_array() {
                let block = param_block_sym(*v);
                t.bindings.insert(
                    *v,
                    MemBinding {
                        block,
                        ixfn: IndexFn::row_major(ty.shape()),
                    },
                );
                t.param_blocks.push((*v, block));
            }
        }
        t.walk(&prog.body);
        t
    }

    fn walk(&mut self, block: &Block) {
        for stm in &block.stms {
            for pe in &stm.pat {
                if let Some(mb) = &pe.mem {
                    self.bindings.insert(pe.var, mb.clone());
                }
            }
            match &stm.exp {
                Exp::If { then_b, else_b, .. } => {
                    self.walk(then_b);
                    self.walk(else_b);
                }
                Exp::Loop { body, .. } => self.walk(body),
                Exp::Map(m) => {
                    if let MapBody::Lambda { body, .. } = &m.body {
                        self.walk(body);
                    }
                }
                _ => {}
            }
        }
    }

    pub fn get(&self, v: Var) -> Option<&MemBinding> {
        self.bindings.get(&v)
    }

    pub fn insert(&mut self, v: Var, mb: MemBinding) {
        self.bindings.insert(v, mb);
    }
}

/// The deterministic block symbol used for an array parameter's memory —
/// re-exported from `arraymem-ir`, which holds the canonical definition
/// shared with the validator and the executor's lowerer.
pub fn param_block_sym(param: Var) -> Sym {
    arraymem_ir::param_block_sym(param)
}
