//! Allocation hoisting (paper §V, property 2): move `alloc` statements —
//! and the pure scalar statements their sizes depend on — as early in
//! their block as data dependencies allow, so that a destination's memory
//! is already in scope when a short-circuit candidate's fresh array is
//! defined.

use arraymem_ir::{Block, Exp, MapBody, Program, Var};
use std::collections::HashSet;

/// Hoist allocations in every block of the program. Returns the number of
/// upward swaps performed (0 = the program was already hoisted), which the
/// pass pipeline reports as a remark.
pub fn hoist_allocations(prog: &mut Program) -> usize {
    hoist_block(&mut prog.body)
}

fn hoist_block(block: &mut Block) -> usize {
    let mut swaps = 0;
    // Recurse first.
    for stm in &mut block.stms {
        match &mut stm.exp {
            Exp::If { then_b, else_b, .. } => {
                swaps += hoist_block(then_b);
                swaps += hoist_block(else_b);
            }
            Exp::Loop { body, .. } => swaps += hoist_block(body),
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &mut m.body {
                    swaps += hoist_block(body);
                }
            }
            _ => {}
        }
    }
    // Stable partition by repeatedly bubbling hoistable statements above
    // non-dependent predecessors. A statement is hoistable if it is an
    // `alloc` or a pure scalar definition (sizes). O(n²) worst case on
    // block length, which is small.
    let n = block.stms.len();
    for _ in 0..n {
        let mut moved = false;
        for k in 1..block.stms.len() {
            if !hoistable(&block.stms[k].exp) {
                continue;
            }
            let defs_prev: HashSet<Var> = block.stms[k - 1].pat.iter().map(|p| p.var).collect();
            let uses: Vec<Var> = block.stms[k].exp.free_vars();
            if uses.iter().any(|v| defs_prev.contains(v)) {
                continue;
            }
            // Also do not move above another hoistable that is already as
            // high as possible — swapping equals is fine but can loop;
            // the `moved` flag with a bounded outer loop prevents that.
            block.stms.swap(k - 1, k);
            moved = true;
            swaps += 1;
        }
        if !moved {
            break;
        }
    }
    swaps
}

fn hoistable(e: &Exp) -> bool {
    matches!(e, Exp::Alloc { .. }) || matches!(e, Exp::Scalar(se) if scalar_pure(se))
}

fn scalar_pure(e: &arraymem_ir::ScalarExp) -> bool {
    use arraymem_ir::ScalarExp as S;
    match e {
        S::Const(_) | S::Var(_) | S::Size(_) => true,
        S::Bin(_, a, b) => scalar_pure(a) && scalar_pure(b),
        S::Un(_, a) => scalar_pure(a),
        // Array reads cannot be reordered across updates.
        S::Index(..) => false,
        S::Select(c, t, f) => scalar_pure(c) && scalar_pure(t) && scalar_pure(f),
    }
}
