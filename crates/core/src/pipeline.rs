//! The middle-end pass pipeline.
//!
//! Every transformation of the memory middle-end — memory introduction,
//! the anti-unification audit, allocation hoisting, short-circuiting,
//! dead-allocation cleanup and release scheduling — runs as a named
//! [`Pass`] driven by [`Pipeline`]. The driver records, per stage:
//!
//! - wall time and delta [`IrStats`] (statement/alloc/elision counts);
//! - the structured [`Remark`]s the stage emitted;
//! - an IR dump after the stage when `ARRAYMEM_PRINT_IR` is set (the
//!   flag is read once; nothing is formatted when it is unset);
//! - in debug builds (or under `ARRAYMEM_VERIFY_IR`), a full
//!   [`validate_memory`](arraymem_ir::validate::validate_memory) check —
//!   a pass that breaks the memory discipline panics *by name* instead of
//!   surfacing as a miscompile several stages later.
//!
//! The pipeline's [fingerprint](Pipeline::fingerprint) — pass set,
//! ordering and the options that change pass behavior — is stamped into
//! [`Program::pipeline_fingerprint`], which the executor's plan cache
//! hashes: toggling any pass changes the cache key, so a stale plan
//! compiled under a different pipeline is never served.

use crate::remark::{RejectReason, Remark, RemarkKind};
use crate::short_circuit::{self, Report};
use crate::{cleanup, hoist, introduce, release::ReleasePlan, Options};
use arraymem_ir::pretty::program_to_string;
use arraymem_ir::{Block, Exp, MapBody, Program, Type, Var};
use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Size and elision counts of a program, cheap enough to recompute before
/// and after every stage; the difference is the stage's visible effect.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct IrStats {
    /// Statements, including nested blocks.
    pub stms: usize,
    /// `alloc` statements.
    pub allocs: usize,
    /// Pattern and merge-parameter memory bindings.
    pub mem_bindings: usize,
    /// Updates whose copy has been elided.
    pub elided_updates: usize,
    /// Concat arguments whose copy has been elided.
    pub elided_concat_args: usize,
    /// Kernel maps constructing their rows in place.
    pub in_place_maps: usize,
}

/// Compute [`IrStats`] for a program.
pub fn ir_stats(prog: &Program) -> IrStats {
    let mut s = IrStats::default();
    stats_block(&prog.body, &mut s);
    s
}

fn stats_block(block: &Block, s: &mut IrStats) {
    for stm in &block.stms {
        s.stms += 1;
        for pe in &stm.pat {
            if pe.mem.is_some() {
                s.mem_bindings += 1;
            }
        }
        match &stm.exp {
            Exp::Alloc { .. } => s.allocs += 1,
            Exp::Update { elided: true, .. } => s.elided_updates += 1,
            Exp::Concat { elided, .. } => {
                s.elided_concat_args += elided.iter().filter(|e| **e).count();
            }
            Exp::If { then_b, else_b, .. } => {
                stats_block(then_b, s);
                stats_block(else_b, s);
            }
            Exp::Loop { params, body, .. } => {
                for pp in params {
                    if pp.mem.is_some() {
                        s.mem_bindings += 1;
                    }
                }
                stats_block(body, s);
            }
            Exp::Map(m) => {
                if m.in_place_result {
                    s.in_place_maps += 1;
                }
                if let MapBody::Lambda { body, .. } = &m.body {
                    stats_block(body, s);
                }
            }
            _ => {}
        }
    }
}

/// What one executed stage did: timing, before/after stats, remark count.
#[derive(Clone, Debug)]
pub struct PassRun {
    pub name: &'static str,
    pub time: Duration,
    pub before: IrStats,
    pub after: IrStats,
    /// Number of remarks this stage emitted.
    pub remarks: usize,
}

/// The pipeline-level compilation report: one [`PassRun`] per executed
/// stage plus every structured [`Remark`], in emission order.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    pub passes: Vec<PassRun>,
    pub remarks: Vec<Remark>,
    /// Fingerprint of the pass set/ordering/options that ran — the value
    /// stamped into [`Program::pipeline_fingerprint`].
    pub pipeline_fingerprint: u64,
    pub total_time: Duration,
}

impl CompileReport {
    /// The run of the named stage, if it executed.
    pub fn pass(&self, name: &str) -> Option<&PassRun> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Remarks emitted by the named stage.
    pub fn remarks_for<'a>(&'a self, pass: &'a str) -> impl Iterator<Item = &'a Remark> {
        self.remarks.iter().filter(move |r| r.pass == pass)
    }

    /// Every rejected short-circuit candidate, with the legality check
    /// that killed it.
    pub fn rejections(&self) -> impl Iterator<Item = (&Remark, RejectReason)> {
        self.remarks.iter().filter_map(|r| match r.kind {
            RemarkKind::CircuitRejected(why) => Some((r, why)),
            _ => None,
        })
    }
}

/// Mutable state shared by the stages of one pipeline run.
pub struct PassCx<'a> {
    pub opts: &'a Options,
    /// Remarks accumulated across stages (every stage appends).
    pub remarks: Vec<Remark>,
    /// The short-circuiting candidate report (empty until that stage).
    pub report: Report,
    /// Early release points scheduled by the release stage.
    pub num_releases: usize,
}

impl PassCx<'_> {
    fn remark(&mut self, pass: &'static str, stm: Option<Var>, kind: RemarkKind, message: String) {
        self.remarks.push(Remark {
            pass,
            stm,
            kind,
            message,
        });
    }
}

/// One named middle-end stage.
pub trait Pass {
    fn name(&self) -> &'static str;
    /// Whether the stage runs under the given options. Disabled stages do
    /// not execute, produce no [`PassRun`], and change the pipeline
    /// [fingerprint](Pipeline::fingerprint).
    fn enabled(&self, _opts: &Options) -> bool {
        true
    }
    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String>;
}

/// Memory introduction (paper §IV-C), as a stage.
struct IntroducePass;

impl Pass for IntroducePass {
    fn name(&self) -> &'static str {
        "introduce"
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        introduce::introduce_memory_with(prog, &mut cx.remarks)
    }
}

/// Audit of the anti-unification results: every `mem`-typed pattern
/// variable of an `if`/`loop` (the existential memory the unifier
/// introduced) must back at least one array result of the same statement,
/// and every such array gets an [`ExistentialMemory`](RemarkKind) remark.
/// This stage runs directly after `introduce`, before short-circuiting may
/// legitimately rebase results away from their existential blocks.
struct AntiunifyPass;

impl Pass for AntiunifyPass {
    fn name(&self) -> &'static str {
        "antiunify"
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        audit_block(&prog.body, cx)
    }
}

fn audit_block(block: &Block, cx: &mut PassCx) -> Result<(), String> {
    for stm in &block.stms {
        if matches!(stm.exp, Exp::If { .. } | Exp::Loop { .. }) {
            let mem_vars: Vec<Var> = stm
                .pat
                .iter()
                .filter(|pe| pe.ty == Type::Mem)
                .map(|pe| pe.var)
                .collect();
            let mut referenced: HashSet<Var> = HashSet::new();
            for pe in &stm.pat {
                if let Some(mb) = &pe.mem {
                    if mem_vars.contains(&mb.block) {
                        referenced.insert(mb.block);
                        cx.remark(
                            "antiunify",
                            Some(pe.var),
                            RemarkKind::ExistentialMemory,
                            format!("{} carries existential memory {}", pe.var, mb.block),
                        );
                    }
                }
            }
            for m in &mem_vars {
                if !referenced.contains(m) {
                    return Err(format!(
                        "existential memory {m} backs no result of its statement"
                    ));
                }
            }
        }
        match &stm.exp {
            Exp::If { then_b, else_b, .. } => {
                audit_block(then_b, cx)?;
                audit_block(else_b, cx)?;
            }
            Exp::Loop { body, .. } => audit_block(body, cx)?,
            Exp::Map(m) => {
                if let MapBody::Lambda { body, .. } = &m.body {
                    audit_block(body, cx)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Allocation hoisting (§V property 2), as a stage.
struct HoistPass;

impl Pass for HoistPass {
    fn name(&self) -> &'static str {
        "hoist"
    }

    fn enabled(&self, opts: &Options) -> bool {
        opts.hoist
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        let swaps = hoist::hoist_allocations(prog);
        if swaps > 0 {
            cx.remark(
                "hoist",
                None,
                RemarkKind::Hoisted,
                format!("{swaps} upward moves of allocations and their size scalars"),
            );
        }
        Ok(())
    }
}

/// Array short-circuiting (§V), as a stage. Every candidate outcome —
/// elision or rejection, with the rejecting legality check — becomes a
/// remark anchored at the circuit-point statement.
struct ShortCircuitPass;

impl Pass for ShortCircuitPass {
    fn name(&self) -> &'static str {
        "short_circuit"
    }

    fn enabled(&self, opts: &Options) -> bool {
        opts.short_circuit
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        let report = if cx.opts.force_unsafe_short_circuit {
            short_circuit::short_circuit_force_unsafe(prog, &cx.opts.env, cx.opts.mapnest_in_place)
        } else {
            short_circuit::short_circuit_with(prog, &cx.opts.env, cx.opts.mapnest_in_place)
        };
        for c in &report.candidates {
            let (kind, message) = if c.succeeded {
                (
                    RemarkKind::CircuitElided,
                    format!("short-circuited {} into the destination memory", c.root),
                )
            } else {
                let why = c
                    .rejection
                    .expect("rejected candidate must carry a structured rejection");
                (
                    RemarkKind::CircuitRejected(why),
                    format!("rejected candidate {}: {}", c.root, c.reason),
                )
            };
            cx.remark("short_circuit", Some(c.stm), kind, message);
        }
        for &v in &report.in_place_stms {
            cx.remark(
                "short_circuit",
                Some(v),
                RemarkKind::MapInPlace,
                format!("mapnest {v} constructs its rows in place"),
            );
        }
        cx.report = report;
        Ok(())
    }
}

/// Memory block merging (see [`crate::merge`]), as a stage. Runs after
/// short-circuiting (so rebased webs are seen in their final blocks) and
/// before cleanup (which collects the vacated `alloc`s). Its executor
/// obligations — the footprint pairs checked mode must re-prove — travel
/// in [`Report::merges`] next to the circuit checks.
struct MergePass;

impl Pass for MergePass {
    fn name(&self) -> &'static str {
        "merge"
    }

    fn enabled(&self, opts: &Options) -> bool {
        opts.merge
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        let rep = crate::merge::merge_blocks(
            prog,
            &cx.opts.env,
            cx.opts.coloring,
            cx.opts.force_unsafe_merge,
        );
        for m in &rep.merged {
            let how = match (m.forced, m.by_footprint) {
                (true, _) => "forced past interference",
                (false, true) => "disjoint footprints",
                (false, false) => "disjoint live ranges",
            };
            cx.remark(
                "merge",
                Some(m.victim),
                RemarkKind::BlocksMerged,
                format!("merged block {} into {} ({how})", m.victim, m.host),
            );
        }
        for g in &rep.grown {
            cx.remark(
                "merge",
                Some(g.host),
                RemarkKind::HostGrown,
                format!(
                    "grew host block {} to fit {} ({} -> {})",
                    g.host, g.member, g.from, g.to
                ),
            );
        }
        for &(v, why) in &rep.rejected {
            cx.remark(
                "merge",
                Some(v),
                RemarkKind::MergeRejected(why),
                format!("block {v} keeps its own allocation ({why:?})"),
            );
        }
        for r in &rep.records {
            if let crate::merge::MergeRecord::CarriedRelease {
                loop_mem,
                yield_mem,
                ..
            } = r
            {
                cx.remark(
                    "merge",
                    Some(*loop_mem),
                    RemarkKind::CarriedRelease,
                    format!(
                        "carried block {loop_mem} released in-body once {yield_mem} replaces it"
                    ),
                );
            }
        }
        cx.report.merges = rep.records;
        Ok(())
    }
}

/// Dead-allocation elimination, as a stage.
struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &'static str {
        "cleanup"
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        for m in cleanup::remove_dead_allocs(prog) {
            cx.remark(
                "cleanup",
                Some(m),
                RemarkKind::DeadAllocRemoved,
                format!("removed dead allocation {m}"),
            );
        }
        Ok(())
    }
}

/// Parallel-safety analysis ([`crate::par_safety`]), as a stage. Runs
/// after merging and cleanup (so verdicts are about the final memory
/// layout) and before release scheduling. Its records — the executor
/// obligations behind every parallel in-place dispatch — travel in
/// [`Report::par_safety`] next to the circuit checks and merge records.
struct ParSafetyPass;

impl Pass for ParSafetyPass {
    fn name(&self) -> &'static str {
        "par_safety"
    }

    fn enabled(&self, opts: &Options) -> bool {
        opts.par_safety
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        let records =
            crate::par_safety::par_safety(prog, &cx.opts.env, cx.opts.force_unsafe_parallel);
        for r in &records {
            let (kind, message) = match (r.level, r.forced) {
                (crate::par_safety::ParLevel::Safe, false) => (
                    RemarkKind::MapParallelSafe,
                    format!(
                        "mapnest {} proven parallel-safe: runs in place, in parallel",
                        r.stm
                    ),
                ),
                (crate::par_safety::ParLevel::Safe, true) => (
                    RemarkKind::MapParallelSafe,
                    format!(
                        "mapnest {} FORCED parallel-safe past {:?}",
                        r.stm,
                        r.reject.expect("forced record keeps the genuine reject")
                    ),
                ),
                (level, _) => {
                    let why = r
                        .reject
                        .expect("non-safe verdict must carry a structured reject");
                    let how = match level {
                        crate::par_safety::ParLevel::NeedsBuffer => {
                            "runs parallel through private row buffers"
                        }
                        _ => "is serialized",
                    };
                    let what = if why == crate::remark::ParReject::RuntimeIndexedWrite {
                        "scatter"
                    } else {
                        "mapnest"
                    };
                    (
                        RemarkKind::MapParRejected(why),
                        format!("{what} {} {how} ({why:?})", r.stm),
                    )
                }
            };
            cx.remark("par_safety", Some(r.stm), kind, message);
        }
        cx.report.par_safety = records;
        Ok(())
    }
}

/// Release scheduling, as a stage. The [`ReleasePlan`] itself is keyed by
/// block addresses and cannot outlive the program move into [`Compiled`]
/// (`crate::Compiled`); the stage computes it for its timing row and
/// remark and drops it — the executor recomputes at lowering time, where
/// the plan feeds `Instr::Release` placement.
struct ReleasePass;

impl Pass for ReleasePass {
    fn name(&self) -> &'static str {
        "release"
    }

    fn run(&self, prog: &mut Program, cx: &mut PassCx) -> Result<(), String> {
        let n = ReleasePlan::compute(prog).num_releases();
        cx.num_releases = n;
        if n > 0 {
            cx.remark(
                "release",
                None,
                RemarkKind::ReleaseScheduled,
                format!("scheduled {n} early release points"),
            );
        }
        Ok(())
    }
}

fn print_ir_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var_os("ARRAYMEM_PRINT_IR").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

fn verify_ir_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    cfg!(debug_assertions)
        || *FLAG.get_or_init(|| {
            std::env::var_os("ARRAYMEM_VERIFY_IR").is_some_and(|v| !v.is_empty() && v != "0")
        })
}

/// The pipeline driver: an ordered list of stages.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// The standard middle-end: `introduce → antiunify → hoist →
    /// short_circuit → merge → cleanup → par_safety → release` (`hoist`,
    /// `short_circuit`, `merge` and `par_safety` subject to their
    /// [`Options`] switches).
    pub fn standard() -> Pipeline {
        Pipeline {
            passes: vec![
                Box::new(IntroducePass),
                Box::new(AntiunifyPass),
                Box::new(HoistPass),
                Box::new(ShortCircuitPass),
                Box::new(MergePass),
                Box::new(CleanupPass),
                Box::new(ParSafetyPass),
                Box::new(ReleasePass),
            ],
        }
    }

    /// Names of the stages that would execute under `opts`, in order.
    pub fn stage_names(&self, opts: &Options) -> Vec<&'static str> {
        self.passes
            .iter()
            .filter(|p| p.enabled(opts))
            .map(|p| p.name())
            .collect()
    }

    /// Fingerprint of the *effective* pipeline: the enabled pass names in
    /// order, plus the option switches that change pass behavior without
    /// removing a stage. Stamped into [`Program::pipeline_fingerprint`],
    /// from where the executor's plan cache picks it up — compiling the
    /// same source under different pipelines yields different cache keys.
    pub fn fingerprint(&self, opts: &Options) -> u64 {
        let mut parts: Vec<String> = self
            .stage_names(opts)
            .iter()
            .map(|s| s.to_string())
            .collect();
        parts.push(format!("mapnest_in_place={}", opts.mapnest_in_place));
        parts.push(format!("coloring={}", opts.coloring));
        parts.push(format!("force_unsafe={}", opts.force_unsafe_short_circuit));
        parts.push(format!("force_unsafe_merge={}", opts.force_unsafe_merge));
        parts.push(format!(
            "force_unsafe_parallel={}",
            opts.force_unsafe_parallel
        ));
        crate::fingerprint::fingerprint_items(&parts)
    }

    /// Run the pipeline over a (memory-free) source program.
    pub fn run(&self, prog: &Program, opts: &Options) -> Result<crate::Compiled, String> {
        self.run_observed(prog, opts, &mut |_, _| {})
    }

    /// As [`Pipeline::run`], invoking `observe(stage_name, program)` with
    /// the input program (stage name `"input"`) and after every executed
    /// stage — the hook behind per-pass IR snapshot tests.
    pub fn run_observed(
        &self,
        prog: &Program,
        opts: &Options,
        observe: &mut dyn FnMut(&str, &Program),
    ) -> Result<crate::Compiled, String> {
        arraymem_ir::validate::validate(prog)?;
        let fp = self.fingerprint(opts);
        let t_total = Instant::now();
        let mut p = prog.clone();
        let mut cx = PassCx {
            opts,
            remarks: Vec::new(),
            report: Report::default(),
            num_releases: 0,
        };
        let mut passes: Vec<PassRun> = Vec::new();
        if print_ir_enabled() {
            eprintln!("== {}: input IR ==\n{}", p.name, program_to_string(&p));
        }
        observe("input", &p);
        for pass in &self.passes {
            if !pass.enabled(opts) {
                continue;
            }
            let before = ir_stats(&p);
            let remarks_before = cx.remarks.len();
            let t0 = Instant::now();
            pass.run(&mut p, &mut cx)?;
            passes.push(PassRun {
                name: pass.name(),
                time: t0.elapsed(),
                before,
                after: ir_stats(&p),
                remarks: cx.remarks.len() - remarks_before,
            });
            if print_ir_enabled() {
                eprintln!(
                    "== {}: IR after `{}` ==\n{}",
                    p.name,
                    pass.name(),
                    program_to_string(&p)
                );
            }
            if verify_ir_enabled() {
                if let Err(e) = arraymem_ir::validate::validate_memory(&p) {
                    panic!("pipeline: pass `{}` produced invalid IR: {e}", pass.name());
                }
            }
            observe(pass.name(), &p);
        }
        p.pipeline_fingerprint = fp;
        Ok(crate::Compiled {
            program: p,
            report: cx.report,
            compile_report: CompileReport {
                passes,
                remarks: cx.remarks,
                pipeline_fingerprint: fp,
                total_time: t_total.elapsed(),
            },
        })
    }
}
